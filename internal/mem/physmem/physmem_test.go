package physmem

import (
	"testing"
	"testing/quick"

	"jord/internal/mem/va"
)

func TestAllocFreeReuse(t *testing.T) {
	a := New(va.Default(), nil)
	pa1, refilled, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if !refilled {
		t.Fatal("first alloc must refill from the OS")
	}
	pa2, refilled, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if refilled {
		t.Fatal("second alloc should come from the bump region")
	}
	if pa1 == pa2 {
		t.Fatal("distinct allocations share a chunk")
	}
	if err := a.Free(0, pa1); err != nil {
		t.Fatal(err)
	}
	pa3, _, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if pa3 != pa1 {
		t.Fatalf("free list not LIFO-reused: got %#x, want %#x", pa3, pa1)
	}
}

func TestAlignment(t *testing.T) {
	enc := va.Default()
	a := New(enc, nil)
	for c := 0; c < enc.NumClasses()-6; c++ { // skip the multi-GB classes
		pa, _, err := a.Alloc(c)
		if err != nil {
			t.Fatal(err)
		}
		size := enc.ClassSize(c)
		if pa%size != 0 {
			t.Errorf("class %d chunk %#x not aligned to %d", c, pa, size)
		}
	}
}

func TestSubPagePacking(t *testing.T) {
	// 128 B chunks pack many-per-page: 32 allocations must fit in one 4 KB
	// page worth of reservation (plus alignment).
	a := New(va.Default(), nil)
	var min, max uint64 = ^uint64(0), 0
	for i := 0; i < 32; i++ {
		pa, _, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if pa < min {
			min = pa
		}
		if pa > max {
			max = pa
		}
	}
	if max-min >= 4096 {
		t.Fatalf("32 x 128B chunks span %d bytes, want < 4096", max-min)
	}
}

func TestDoubleFreeAndWrongClass(t *testing.T) {
	a := New(va.Default(), nil)
	pa, _, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(3, pa); err == nil {
		t.Error("wrong-class free accepted")
	}
	if err := a.Free(2, pa); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(2, pa); err == nil {
		t.Error("double free accepted")
	}
	if err := a.Free(2, 0xdead000); err == nil {
		t.Error("free of unknown chunk accepted")
	}
}

func TestOSExhaustion(t *testing.T) {
	calls := 0
	refill := func(bytes uint64) (uint64, bool) {
		calls++
		if calls > 1 {
			return 0, false
		}
		return 0x1000_0000, true
	}
	a := New(va.Default(), refill)
	a.RefillBytes = 4096
	// Exhaust the single 4 KB reservation with 4 KB-class allocations.
	if _, _, err := a.Alloc(5); err != nil { // 4 KB class
		t.Fatal(err)
	}
	if _, _, err := a.Alloc(5); err == nil {
		t.Fatal("allocation beyond OS reservation succeeded")
	}
}

func TestLargeAllocationGrowsRefill(t *testing.T) {
	var asked uint64
	refill := func(bytes uint64) (uint64, bool) {
		asked = bytes
		return 0x4000_0000, true
	}
	a := New(va.Default(), refill)
	c, err := va.Default().ClassFor(8 << 20) // 8 MB > default 2 MB refill
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Alloc(c); err != nil {
		t.Fatal(err)
	}
	if asked < 8<<20 {
		t.Fatalf("refill asked %d bytes, want >= 8 MB", asked)
	}
}

// Property: live chunks of one class never overlap.
func TestQuickNoOverlap(t *testing.T) {
	enc := va.Default()
	f := func(ops []uint8) bool {
		a := New(enc, nil)
		type chunk struct{ base, size uint64 }
		var live []chunk
		for _, op := range ops {
			c := int(op) % 6 // classes 128B..4KB
			pa, _, err := a.Alloc(c)
			if err != nil {
				return false
			}
			size := enc.ClassSize(c)
			for _, l := range live {
				if pa < l.base+l.size && l.base < pa+size {
					return false // overlap
				}
			}
			live = append(live, chunk{pa, size})
		}
		return a.InUse() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	a := New(va.Default(), nil)
	pa, _, _ := a.Alloc(0)
	a.Alloc(1)
	a.Free(0, pa)
	if a.Allocs != 2 || a.Frees != 1 || a.Refills == 0 {
		t.Fatalf("stats: allocs=%d frees=%d refills=%d", a.Allocs, a.Frees, a.Refills)
	}
	if a.InUse() != 1 {
		t.Fatalf("in use = %d, want 1", a.InUse())
	}
	if a.FreeChunks(0) != 1 {
		t.Fatalf("free chunks = %d, want 1", a.FreeChunks(0))
	}
}
