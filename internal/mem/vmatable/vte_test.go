package vmatable

import (
	"testing"
	"testing/quick"
)

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		PermNone: "---",
		PermR:    "r--",
		PermRW:   "rw-",
		PermRX:   "r-x",
		PermRWX:  "rwx",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestPermHas(t *testing.T) {
	if !PermRW.Has(PermR) || !PermRW.Has(PermW) || !PermRW.Has(PermRW) {
		t.Error("PermRW should include R, W, RW")
	}
	if PermRW.Has(PermX) || PermR.Has(PermW) {
		t.Error("unexpected permission inclusion")
	}
	if !PermR.Has(PermNone) {
		t.Error("every permission includes none")
	}
}

func TestSetGetClearPerm(t *testing.T) {
	v := &VTE{Bound: 128}
	if _, ok, _ := v.PermFor(7); ok {
		t.Fatal("fresh VTE should hold no permissions")
	}
	if spilled := v.SetPerm(7, PermRW); spilled {
		t.Fatal("first entry should use the sub-array")
	}
	perm, ok, _ := v.PermFor(7)
	if !ok || perm != PermRW {
		t.Fatalf("PermFor(7) = %v,%v, want rw-,true", perm, ok)
	}
	// Update in place.
	v.SetPerm(7, PermR)
	if perm, _, _ = v.PermFor(7); perm != PermR {
		t.Fatalf("updated perm = %v, want r--", perm)
	}
	if !v.ClearPerm(7) {
		t.Fatal("ClearPerm should report removal")
	}
	if _, ok, _ = v.PermFor(7); ok {
		t.Fatal("cleared PD still visible")
	}
	if v.ClearPerm(7) {
		t.Fatal("double clear should report false")
	}
}

func TestSubArraySpill(t *testing.T) {
	v := &VTE{Bound: 128}
	for i := 0; i < SubEntries; i++ {
		if spilled := v.SetPerm(PDID(i), PermR); spilled {
			t.Fatalf("entry %d spilled before sub-array full", i)
		}
	}
	// The 21st sharer goes to the overflow list (paper: "rare cases with
	// more sharers" use the ptr field).
	if spilled := v.SetPerm(PDID(SubEntries), PermW); !spilled {
		t.Fatal("21st sharer should spill to overflow")
	}
	if v.NumSharers() != SubEntries+1 {
		t.Fatalf("sharers = %d, want %d", v.NumSharers(), SubEntries+1)
	}
	perm, ok, _ := v.PermFor(PDID(SubEntries))
	if !ok || perm != PermW {
		t.Fatal("overflow entry not found")
	}
	// Clearing a sub-array slot frees it for reuse without spill.
	v.ClearPerm(3)
	if spilled := v.SetPerm(999, PermX); spilled {
		t.Fatal("freed sub slot should be reused before overflow")
	}
}

func TestPermForScanCost(t *testing.T) {
	v := &VTE{Bound: 128}
	v.SetPerm(1, PermR)
	_, _, scanned := v.PermFor(1)
	if scanned != 1 {
		t.Fatalf("first-slot hit scanned %d, want 1", scanned)
	}
	// Global entries answer without scanning the sub-array.
	g := &VTE{Bound: 128, Global: true, GlobalPerm: PermRX}
	perm, ok, scanned := g.PermFor(1234)
	if !ok || perm != PermRX || scanned != 0 {
		t.Fatalf("global: perm=%v ok=%v scanned=%d", perm, ok, scanned)
	}
}

func TestMovePerm(t *testing.T) {
	v := &VTE{Bound: 128}
	v.SetPerm(1, PermRW)
	if err := v.MovePerm(1, 2, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := v.PermFor(1); ok {
		t.Fatal("source PD should lose permission after pmove")
	}
	perm, ok, _ := v.PermFor(2)
	if !ok || perm != PermRW {
		t.Fatal("target PD should gain permission after pmove")
	}
	// Moving more than held fails.
	if err := v.MovePerm(2, 3, PermRWX); err == nil {
		t.Fatal("pmove should not amplify permissions")
	}
	// Moving from a PD with nothing fails.
	if err := v.MovePerm(9, 3, PermR); err == nil {
		t.Fatal("pmove from empty PD should fail")
	}
}

func TestCopyPerm(t *testing.T) {
	v := &VTE{Bound: 128}
	v.SetPerm(1, PermRW)
	if err := v.CopyPerm(1, 2, PermR); err != nil {
		t.Fatal(err)
	}
	p1, _, _ := v.PermFor(1)
	p2, _, _ := v.PermFor(2)
	if p1 != PermRW || p2 != PermR {
		t.Fatalf("after pcopy: src=%v dst=%v, want rw-/r--", p1, p2)
	}
	if err := v.CopyPerm(2, 3, PermW); err == nil {
		t.Fatal("pcopy should not amplify permissions")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(bound, offs uint64, global, priv bool, gp uint8, pds []uint16, perms []uint8) bool {
		v := &VTE{
			Bound:      bound,
			Offs:       offs & (1<<52 - 1),
			Global:     global,
			Priv:       priv,
			GlobalPerm: Perm(gp & 7),
		}
		n := len(pds)
		if len(perms) < n {
			n = len(perms)
		}
		if n > SubEntries {
			n = SubEntries
		}
		want := map[PDID]Perm{}
		for i := 0; i < n; i++ {
			pd := PDID(pds[i] & 0xfff)
			perm := Perm(perms[i]&6 | 1) // non-zero, <=7
			v.SetPerm(pd, perm)
			want[pd] = perm
		}
		packed := v.Pack(0)
		got, ptr, ok := UnpackVTE(packed)
		if !ok || ptr != 0 {
			return false
		}
		if got.Bound != v.Bound || got.Offs != v.Offs ||
			got.Global != v.Global || got.Priv != v.Priv ||
			got.GlobalPerm != v.GlobalPerm {
			return false
		}
		if !global {
			// (When Global is set PermFor answers from GlobalPerm, so
			// per-PD grants are only observable on non-global entries.)
			for pd, perm := range want {
				gp, ok, _ := got.PermFor(pd)
				if !ok || gp != perm {
					return false
				}
			}
		}
		return got.NumSharers() == v.NumSharers()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPackIsOneCacheBlock(t *testing.T) {
	v := &VTE{Bound: 4096}
	if len(v.Pack(0)) != 64 {
		t.Fatal("VTE must span exactly one 64B cache block")
	}
}

func TestUnpackInvalidEntry(t *testing.T) {
	var zero [VTESize]byte
	if _, _, ok := UnpackVTE(zero); ok {
		t.Fatal("zeroed entry should be invalid")
	}
}

func TestPackPreservesPtr(t *testing.T) {
	v := &VTE{Bound: 128}
	b := v.Pack(0xdeadbeef)
	_, ptr, ok := UnpackVTE(b)
	if !ok || ptr != 0xdeadbeef {
		t.Fatalf("ptr = %#x ok=%v, want 0xdeadbeef", ptr, ok)
	}
}

func TestPromoteDemoteGlobal(t *testing.T) {
	v := &VTE{Bound: 128}
	v.SetPerm(1, PermRW) // owner
	v.SetPerm(2, PermR)  // reader
	v.SetPerm(3, PermR)  // reader

	cleared := v.PromoteGlobal(PermR)
	if cleared != 2 {
		t.Fatalf("PromoteGlobal cleared %d redundant entries, want 2", cleared)
	}
	// Every PD — holder or not — now reads via the G bit, with zero scans:
	// the walker short-circuits before touching the sub-array.
	for _, pd := range []PDID{1, 2, 3, 99} {
		perm, ok, scanned := v.PermFor(pd)
		if !ok || perm != PermR || scanned != 0 {
			t.Fatalf("promoted PermFor(%d) = (%v, %v, %d scans), want (r--, true, 0)",
				pd, perm, ok, scanned)
		}
	}

	// Demotion returns the prior global permission and re-exposes the
	// preserved stronger entry (the owner's RW) to the walker.
	if was := v.DemoteGlobal(); was != PermR {
		t.Fatalf("DemoteGlobal = %v, want r--", was)
	}
	if perm, ok, _ := v.PermFor(1); !ok || perm != PermRW {
		t.Fatalf("owner after demotion = (%v, %v), want (rw-, true)", perm, ok)
	}
	for _, pd := range []PDID{2, 3, 99} {
		if _, ok, _ := v.PermFor(pd); ok {
			t.Fatalf("reader %d still holds permission after demotion", pd)
		}
	}
	// Demoting a non-global VTE is a harmless no-op reporting PermNone.
	if was := v.DemoteGlobal(); was != PermNone {
		t.Fatalf("second DemoteGlobal = %v, want ---", was)
	}
}

func TestPromoteGlobalCompactsOverflow(t *testing.T) {
	v := &VTE{Bound: 128}
	// Fill the sub-array and spill readers into the overflow list.
	for i := 0; i < SubEntries+4; i++ {
		v.SetPerm(PDID(i+1), PermR)
	}
	if len(v.Overflow) != 4 {
		t.Fatalf("overflow = %d entries, want 4", len(v.Overflow))
	}
	if cleared := v.PromoteGlobal(PermR); cleared != SubEntries+4 {
		t.Fatalf("cleared = %d, want %d", cleared, SubEntries+4)
	}
	if len(v.Overflow) != 0 || v.NumSharers() != 0 {
		t.Fatalf("promotion left %d overflow / %d sharers", len(v.Overflow), v.NumSharers())
	}
	// The packed form carries the G bit and the global permission.
	packed := v.Pack(0)
	u, _, ok := UnpackVTE(packed)
	if !ok || !u.Global || u.GlobalPerm != PermR {
		t.Fatalf("packed/unpacked G bit lost: global=%v perm=%v", u.Global, u.GlobalPerm)
	}
}
