package vmatable

import (
	"fmt"

	"jord/internal/mem/va"
)

// Table is the plain-list VMA table. Entry positions are the pure function
// f(class, index) of §4.1 — an even interleaving of all size classes — so
// the VTE address of any VMA is computable from its base address alone,
// with no extra memory accesses. The table is conceptually preallocated
// and overprovisioned (the paper notes 64 MB covers a million VMAs); this
// model materializes entries lazily but enforces the capacity limit.
type Table struct {
	Enc  va.Encoding
	Base uint64 // VA of the table itself (a privileged VMA)
	Size uint64 // table size in bytes

	entries map[uint64]*VTE // slot -> entry
	live    int
}

// DefaultTableBytes matches the paper's sizing note: 64 MB of VTEs.
const DefaultTableBytes = 64 << 20

// New creates an empty table with the given encoding, base address, and
// byte size.
func New(enc va.Encoding, base, size uint64) (*Table, error) {
	if err := enc.Validate(); err != nil {
		return nil, err
	}
	if size < VTESize {
		return nil, fmt.Errorf("vmatable: table size %d too small", size)
	}
	return &Table{Enc: enc, Base: base, Size: size, entries: make(map[uint64]*VTE)}, nil
}

// Capacity returns the number of VTE slots.
func (t *Table) Capacity() uint64 { return t.Size / VTESize }

// Live returns the number of valid entries.
func (t *Table) Live() int { return t.live }

// Slot computes f(class, index): the plain-list position of a VMA. The
// interleaving places consecutive indexes of one class NumClasses slots
// apart, so all classes share the table evenly.
func (t *Table) Slot(class int, index uint64) uint64 {
	return index*uint64(t.Enc.NumClasses()) + uint64(class)
}

// VTEAddr returns the virtual address of the VTE for (class, index) —
// what the hardware walker computes as A_VTE = A_Base + f(SC, Index).
func (t *Table) VTEAddr(class int, index uint64) uint64 {
	return t.Base + t.Slot(class, index)*VTESize
}

// SlotForVTEAddr inverts VTEAddr; ok is false if addr is not a VTE address
// within the table.
func (t *Table) SlotForVTEAddr(addr uint64) (uint64, bool) {
	if addr < t.Base || addr >= t.Base+t.Size {
		return 0, false
	}
	off := addr - t.Base
	if off%VTESize != 0 {
		return 0, false
	}
	return off / VTESize, true
}

// ContainsVTEAddr reports whether addr falls inside the table region —
// the check the L1D performs against uatp/uatc to tag VTE accesses with
// the T bit.
func (t *Table) ContainsVTEAddr(addr uint64) bool {
	return addr >= t.Base && addr < t.Base+t.Size
}

// MaxIndex returns the highest usable index for a class given both the VA
// format and the table capacity.
func (t *Table) MaxIndex(class int) uint64 {
	byFormat := t.Enc.MaxIndex(class)
	byTable := t.Capacity() / uint64(t.Enc.NumClasses())
	if byTable < byFormat {
		return byTable
	}
	return byFormat
}

// Get returns the entry for (class, index), or nil if the slot is free.
func (t *Table) Get(class int, index uint64) *VTE {
	return t.entries[t.Slot(class, index)]
}

// Insert installs a VTE at (class, index). The slot must be free and
// within both the table capacity and the VA format's index range.
func (t *Table) Insert(class int, index uint64, vte *VTE) error {
	if class < 0 || class >= t.Enc.NumClasses() {
		return fmt.Errorf("vmatable: class %d out of range", class)
	}
	if index >= t.MaxIndex(class) {
		return fmt.Errorf("vmatable: index %d exceeds max %d for class %d",
			index, t.MaxIndex(class), class)
	}
	if vte.Bound == 0 || vte.Bound > t.Enc.ClassSize(class) {
		return fmt.Errorf("vmatable: bound %d invalid for class %d (size %d)",
			vte.Bound, class, t.Enc.ClassSize(class))
	}
	slot := t.Slot(class, index)
	if t.entries[slot] != nil {
		return fmt.Errorf("vmatable: slot for class %d index %d already occupied", class, index)
	}
	t.entries[slot] = vte
	t.live++
	return nil
}

// Remove frees the slot for (class, index) and returns the removed entry,
// or nil if it was already free.
func (t *Table) Remove(class int, index uint64) *VTE {
	slot := t.Slot(class, index)
	vte := t.entries[slot]
	if vte != nil {
		delete(t.entries, slot)
		t.live--
	}
	return vte
}

// Lookup resolves a virtual address to its VMA. It decodes the address,
// fetches the VTE at the computed position, and bound-checks the offset —
// exactly the walk the VTW performs. ok is false when the address is
// outside the Jord region, the slot is empty, or the offset is past the
// VMA's bound.
func (t *Table) Lookup(addr uint64) (vte *VTE, d va.Decoded, ok bool) {
	d, ok = t.Enc.Decode(addr)
	if !ok {
		return nil, d, false
	}
	vte = t.Get(d.Class, d.Index)
	if vte == nil {
		return nil, d, false
	}
	if d.Offset >= vte.Bound {
		return nil, d, false
	}
	return vte, d, true
}

// Translate performs a full translation + permission check for a PD: the
// physical address and whether the access with permission need is allowed.
// faultKind distinguishes unmapped addresses from permission failures.
func (t *Table) Translate(addr uint64, pd PDID, need Perm) (pa uint64, fault FaultKind) {
	vte, d, ok := t.Lookup(addr)
	if !ok {
		return 0, FaultUnmapped
	}
	perm, held, _ := vte.PermFor(pd)
	if !held || !perm.Has(need) {
		return 0, FaultPermission
	}
	return vte.Offs + d.Offset, FaultNone
}

// FaultKind classifies a translation failure.
type FaultKind int

const (
	FaultNone FaultKind = iota
	FaultUnmapped
	FaultPermission
	FaultPrivilege // unprivileged access to a privileged VMA or CSR
	FaultGate      // control flow entered privileged code not via uatg
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultUnmapped:
		return "unmapped"
	case FaultPermission:
		return "permission"
	case FaultPrivilege:
		return "privilege"
	case FaultGate:
		return "gate"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}
