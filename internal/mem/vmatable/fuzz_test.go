package vmatable

import "testing"

// FuzzUnpackVTE feeds arbitrary 64-byte blocks to the VTE parser: no
// panics, and valid entries must survive a pack/unpack round trip.
func FuzzUnpackVTE(f *testing.F) {
	valid := (&VTE{Bound: 4096, Offs: 0x1234}).Pack(7)
	f.Add(valid[:])
	var zero [VTESize]byte
	f.Add(zero[:])
	f.Fuzz(func(t *testing.T, raw []byte) {
		var b [VTESize]byte
		copy(b[:], raw)
		v, ptr, ok := UnpackVTE(b)
		if !ok {
			return
		}
		// Whatever was parsed must re-serialize to a block that parses to
		// the same logical entry (idempotent normal form).
		again, ptr2, ok2 := UnpackVTE(v.Pack(ptr))
		if !ok2 || ptr2 != ptr {
			t.Fatal("repack lost validity or ptr")
		}
		if again.Bound != v.Bound || again.Offs != v.Offs ||
			again.Global != v.Global || again.Priv != v.Priv ||
			again.GlobalPerm != v.GlobalPerm || again.NumSharers() != v.NumSharers() {
			t.Fatalf("repack drift: %+v vs %+v", again, v)
		}
	})
}

// FuzzPermOps drives random permission-op sequences against one VTE:
// invariants must hold regardless of order.
func FuzzPermOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0, 255, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		v := &VTE{Bound: 128}
		for i := 0; i+1 < len(ops); i += 2 {
			pd := PDID(ops[i]) % 64
			switch ops[i+1] % 4 {
			case 0:
				v.SetPerm(pd, Perm(ops[i+1]%7+1))
			case 1:
				v.ClearPerm(pd)
			case 2:
				v.MovePerm(pd, PDID(ops[i+1])%64, PermR) // may fail; fine
			case 3:
				v.CopyPerm(pd, PDID(ops[i+1])%64, PermR)
			}
			if n := v.NumSharers(); n != len(v.Sharers()) {
				t.Fatalf("sharers inconsistent: %d vs %d", n, len(v.Sharers()))
			}
		}
		// Every listed sharer must actually resolve.
		for _, pd := range v.Sharers() {
			if _, ok, _ := v.PermFor(pd); !ok {
				t.Fatalf("sharer %d not resolvable", pd)
			}
		}
	})
}
