// Package vmatable implements Jord's VMA table: the flat, preallocated
// "plain list" of VMA table entries (VTEs) that both PrivLib (software) and
// the VMA table walker (hardware) traverse concurrently (paper §4.1), and
// the VTE structure itself with its per-PD permission sub-array (§4.3,
// Figure 8).
package vmatable

import (
	"encoding/binary"
	"fmt"
)

// Perm is a VMA permission bitmask.
type Perm uint8

const (
	PermNone Perm = 0
	PermR    Perm = 1 << iota
	PermW
	PermX

	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

// Has reports whether p grants every permission in want.
func (p Perm) Has(want Perm) bool { return p&want == want }

// String renders the familiar rwx triplet.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// PDID identifies a protection domain. The VTE layout reserves 12 bits for
// it, so at most MaxPDs domains exist concurrently. PD 0 is the executor's
// own (trusted) domain.
type PDID uint16

// MaxPDs is the number of protection domain IDs (12-bit field in the VTE
// sub-array).
const MaxPDs = 1 << 12

// SubEntries is the size of the in-VTE PD permission sub-array. The paper
// sizes it at 20 to cover the common case; VMAs with more sharers spill
// into an overflow list reached through the VTE's ptr field.
const SubEntries = 20

// VTESize is the byte size of one VTE: a full cache block, to avoid false
// sharing (§4.3).
const VTESize = 64

// PDPerm is one sub-array (or overflow) entry: a protection domain and the
// permission it holds on the VMA.
type PDPerm struct {
	PD   PDID
	Perm Perm
}

// VTE is a VMA table entry (Figure 8): the VMA's bound (requested size),
// its physical offset, attribute bits, and per-PD permissions.
type VTE struct {
	Bound uint64 // requested VMA size in bytes (<= class size)
	Offs  uint64 // physical base address backing the VMA (52 bits)

	Global     bool // G bit: permission applies to every PD
	Priv       bool // P bit: privileged VMA (PrivLib-only)
	GlobalPerm Perm // attr permission, used when Global is set

	// Sub is the fixed in-entry PD permission sub-array; unused slots have
	// Perm == PermNone. Overflow holds the spill list reached via the
	// VTE's ptr field for VMAs with more than SubEntries sharers.
	Sub      [SubEntries]PDPerm
	Overflow []PDPerm

	// used marks sub slots occupied. A slot with Perm == PermNone could be
	// a revoked-to-none entry, so track occupancy explicitly.
	used [SubEntries]bool
}

// PermFor returns the permission PD pd holds on this VMA and whether pd
// appears at all (or the VMA is global). scanned reports how many
// sub-array/overflow slots were examined — the work the hardware walker or
// PrivLib performs, used for timing.
func (v *VTE) PermFor(pd PDID) (perm Perm, ok bool, scanned int) {
	if v.Global {
		return v.GlobalPerm, true, 0
	}
	for i := range v.Sub {
		scanned++
		if v.used[i] && v.Sub[i].PD == pd {
			return v.Sub[i].Perm, true, scanned
		}
	}
	for i := range v.Overflow {
		scanned++
		if v.Overflow[i].PD == pd {
			return v.Overflow[i].Perm, true, scanned
		}
	}
	return PermNone, false, scanned
}

// SetPerm grants pd the given permission, updating an existing slot or
// claiming a free one. spilled reports whether the overflow list had to be
// used (a slower path the caller charges extra for).
func (v *VTE) SetPerm(pd PDID, perm Perm) (spilled bool) {
	for i := range v.Sub {
		if v.used[i] && v.Sub[i].PD == pd {
			v.Sub[i].Perm = perm
			return false
		}
	}
	for i := range v.Overflow {
		if v.Overflow[i].PD == pd {
			v.Overflow[i].Perm = perm
			return true
		}
	}
	for i := range v.Sub {
		if !v.used[i] {
			v.Sub[i] = PDPerm{PD: pd, Perm: perm}
			v.used[i] = true
			return false
		}
	}
	v.Overflow = append(v.Overflow, PDPerm{PD: pd, Perm: perm})
	return true
}

// ClearPerm removes pd's permission entirely. It reports whether pd held a
// permission.
func (v *VTE) ClearPerm(pd PDID) bool {
	for i := range v.Sub {
		if v.used[i] && v.Sub[i].PD == pd {
			v.Sub[i] = PDPerm{}
			v.used[i] = false
			return true
		}
	}
	for i := range v.Overflow {
		if v.Overflow[i].PD == pd {
			v.Overflow = append(v.Overflow[:i], v.Overflow[i+1:]...)
			return true
		}
	}
	return false
}

// MovePerm atomically transfers from's permission on the VMA to to,
// capping it at perm (the pmove semantics). It fails if from holds no
// permission or holds less than perm.
func (v *VTE) MovePerm(from, to PDID, perm Perm) error {
	have, ok, _ := v.PermFor(from)
	if !ok {
		return fmt.Errorf("vmatable: pmove: PD %d holds no permission", from)
	}
	if !have.Has(perm) {
		return fmt.Errorf("vmatable: pmove: PD %d holds %v, cannot grant %v", from, have, perm)
	}
	v.ClearPerm(from)
	v.SetPerm(to, perm)
	return nil
}

// CopyPerm duplicates from's permission to to, capped at perm (pcopy).
func (v *VTE) CopyPerm(from, to PDID, perm Perm) error {
	have, ok, _ := v.PermFor(from)
	if !ok {
		return fmt.Errorf("vmatable: pcopy: PD %d holds no permission", from)
	}
	if !have.Has(perm) {
		return fmt.Errorf("vmatable: pcopy: PD %d holds %v, cannot grant %v", from, have, perm)
	}
	v.SetPerm(to, perm)
	return nil
}

// PromoteGlobal sets the G bit, granting perm to every PD (promotion of a
// hot read-mostly VMA: readers stop paying sub-array walks entirely — the
// walker short-circuits on the G bit). Sub-array and overflow entries whose
// permission is covered by perm become redundant and are cleared, freeing
// sub-array slots; entries holding MORE than perm (e.g. the owner's RW
// under a global R) are preserved so DemoteGlobal restores them, though
// they are shadowed while the G bit is set. Returns how many redundant
// entries were compacted away.
func (v *VTE) PromoteGlobal(perm Perm) (cleared int) {
	v.Global = true
	v.GlobalPerm = perm
	for i := range v.Sub {
		if v.used[i] && perm.Has(v.Sub[i].Perm) {
			v.Sub[i] = PDPerm{}
			v.used[i] = false
			cleared++
		}
	}
	for i := 0; i < len(v.Overflow); {
		if perm.Has(v.Overflow[i].Perm) {
			v.Overflow = append(v.Overflow[:i], v.Overflow[i+1:]...)
			cleared++
			continue
		}
		i++
	}
	return cleared
}

// DemoteGlobal clears the G bit (a write is about to happen, so the
// every-PD read grant must be revoked). Per-PD entries preserved across
// the promotion become visible to the walker again. Returns the permission
// that was global (PermNone if the VMA was not global).
func (v *VTE) DemoteGlobal() Perm {
	was := PermNone
	if v.Global {
		was = v.GlobalPerm
	}
	v.Global = false
	v.GlobalPerm = PermNone
	return was
}

// Sharers returns the PDs currently holding any permission.
func (v *VTE) Sharers() []PDID {
	var out []PDID
	for i := range v.Sub {
		if v.used[i] {
			out = append(out, v.Sub[i].PD)
		}
	}
	for _, e := range v.Overflow {
		out = append(out, e.PD)
	}
	return out
}

// NumSharers returns the number of PDs holding permissions.
func (v *VTE) NumSharers() int {
	n := len(v.Overflow)
	for i := range v.Sub {
		if v.used[i] {
			n++
		}
	}
	return n
}

// --- Binary layout (Figure 8) ---
//
//	bits   0.. 63  bound
//	bits  64..127  offs (52 bits) | attr "a" (12 bits: valid, G, P, perm)
//	bits 128..191  ptr (overflow list; modelled as an opaque handle)
//	bits 192..511  sub-array: 20 x 16-bit entries [valid|perm(3)|pd(12)]

const (
	attrValid = 1 << 0
	attrG     = 1 << 1
	attrP     = 1 << 2
	attrPermS = 3 // perm occupies attr bits 3..5
	offsMask  = 1<<52 - 1
)

// Pack serializes the VTE into its 64-byte hardware layout. The overflow
// list is external to the entry; ptr receives the caller-provided handle
// (0 when there is no overflow).
func (v *VTE) Pack(ptr uint64) [VTESize]byte {
	var b [VTESize]byte
	binary.LittleEndian.PutUint64(b[0:], v.Bound)
	attr := uint64(attrValid)
	if v.Global {
		attr |= attrG
	}
	if v.Priv {
		attr |= attrP
	}
	attr |= uint64(v.GlobalPerm) << attrPermS
	binary.LittleEndian.PutUint64(b[8:], v.Offs&offsMask|attr<<52)
	binary.LittleEndian.PutUint64(b[16:], ptr)
	for i := 0; i < SubEntries; i++ {
		var e uint16
		if v.used[i] {
			e = 1<<15 | uint16(v.Sub[i].Perm&7)<<12 | uint16(v.Sub[i].PD)&0xfff
		}
		binary.LittleEndian.PutUint16(b[24+2*i:], e)
	}
	return b
}

// UnpackVTE parses the 64-byte layout back into a VTE (without its
// overflow list) and returns the stored ptr handle. ok is false for an
// invalid (free) entry.
func UnpackVTE(b [VTESize]byte) (v VTE, ptr uint64, ok bool) {
	word1 := binary.LittleEndian.Uint64(b[8:])
	attr := word1 >> 52
	if attr&attrValid == 0 {
		return VTE{}, 0, false
	}
	v.Bound = binary.LittleEndian.Uint64(b[0:])
	v.Offs = word1 & offsMask
	v.Global = attr&attrG != 0
	v.Priv = attr&attrP != 0
	v.GlobalPerm = Perm(attr >> attrPermS & 7)
	ptr = binary.LittleEndian.Uint64(b[16:])
	for i := 0; i < SubEntries; i++ {
		e := binary.LittleEndian.Uint16(b[24+2*i:])
		if e&(1<<15) != 0 {
			v.used[i] = true
			v.Sub[i] = PDPerm{PD: PDID(e & 0xfff), Perm: Perm(e >> 12 & 7)}
		}
	}
	return v, ptr, true
}
