package vmatable

import (
	"testing"
	"testing/quick"

	"jord/internal/mem/va"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(va.Default(), 0x4000_0000_0000, DefaultTableBytes)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCapacityMatchesPaper(t *testing.T) {
	tbl := newTable(t)
	// §4.1: "a 64 MB VMA table can accommodate one million VMAs".
	if tbl.Capacity() != 1<<20 {
		t.Fatalf("capacity = %d, want 1M", tbl.Capacity())
	}
}

func TestSlotInjective(t *testing.T) {
	tbl := newTable(t)
	f := func(c1, c2 uint8, i1, i2 uint32) bool {
		cl1 := int(c1) % 26
		cl2 := int(c2) % 26
		idx1 := uint64(i1) % 1000
		idx2 := uint64(i2) % 1000
		if cl1 == cl2 && idx1 == idx2 {
			return true
		}
		return tbl.Slot(cl1, idx1) != tbl.Slot(cl2, idx2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotInterleavesClasses(t *testing.T) {
	tbl := newTable(t)
	// f evenly interleaves: consecutive slots at index 0 are the classes.
	for c := 0; c < 26; c++ {
		if got := tbl.Slot(c, 0); got != uint64(c) {
			t.Fatalf("Slot(%d, 0) = %d, want %d", c, got, c)
		}
	}
	if got := tbl.Slot(0, 1); got != 26 {
		t.Fatalf("Slot(0, 1) = %d, want 26", got)
	}
}

func TestVTEAddrRoundTrip(t *testing.T) {
	tbl := newTable(t)
	f := func(c uint8, idx uint32) bool {
		class := int(c) % 26
		index := uint64(idx) % tbl.MaxIndex(class)
		addr := tbl.VTEAddr(class, index)
		if !tbl.ContainsVTEAddr(addr) {
			return false
		}
		slot, ok := tbl.SlotForVTEAddr(addr)
		return ok && slot == tbl.Slot(class, index)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.ContainsVTEAddr(tbl.Base - 1) {
		t.Error("address below table should not be contained")
	}
	if _, ok := tbl.SlotForVTEAddr(tbl.Base + 3); ok {
		t.Error("misaligned address should not resolve to a slot")
	}
}

func TestInsertLookupRemove(t *testing.T) {
	tbl := newTable(t)
	enc := tbl.Enc
	vte := &VTE{Bound: 100, Offs: 0x1000}
	vte.SetPerm(1, PermRW)
	if err := tbl.Insert(0, 5, vte); err != nil {
		t.Fatal(err)
	}
	if tbl.Live() != 1 {
		t.Fatalf("live = %d, want 1", tbl.Live())
	}

	base := enc.Encode(0, 5)
	got, d, ok := tbl.Lookup(base + 42)
	if !ok || got != vte || d.Offset != 42 {
		t.Fatalf("Lookup failed: ok=%v off=%d", ok, d.Offset)
	}
	// Past the bound (but inside the 128B chunk) must miss.
	if _, _, ok := tbl.Lookup(base + 100); ok {
		t.Fatal("lookup past bound should fail")
	}
	// Unmapped neighbour index must miss.
	if _, _, ok := tbl.Lookup(enc.Encode(0, 6)); ok {
		t.Fatal("lookup of unmapped VMA should fail")
	}

	if removed := tbl.Remove(0, 5); removed != vte {
		t.Fatal("Remove returned wrong entry")
	}
	if tbl.Live() != 0 {
		t.Fatalf("live = %d, want 0", tbl.Live())
	}
	if _, _, ok := tbl.Lookup(base); ok {
		t.Fatal("lookup after remove should fail")
	}
	if tbl.Remove(0, 5) != nil {
		t.Fatal("double remove should return nil")
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.Insert(0, 1, &VTE{Bound: 100}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(0, 1, &VTE{Bound: 100}); err == nil {
		t.Error("double insert should fail")
	}
	if err := tbl.Insert(-1, 0, &VTE{Bound: 1}); err == nil {
		t.Error("negative class should fail")
	}
	if err := tbl.Insert(26, 0, &VTE{Bound: 1}); err == nil {
		t.Error("out-of-range class should fail")
	}
	if err := tbl.Insert(0, 2, &VTE{Bound: 0}); err == nil {
		t.Error("zero bound should fail")
	}
	if err := tbl.Insert(0, 2, &VTE{Bound: 129}); err == nil {
		t.Error("bound above class size should fail")
	}
	if err := tbl.Insert(0, tbl.MaxIndex(0), &VTE{Bound: 1}); err == nil {
		t.Error("index at capacity should fail")
	}
}

func TestTranslate(t *testing.T) {
	tbl := newTable(t)
	vte := &VTE{Bound: 200, Offs: 0x9000}
	vte.SetPerm(3, PermR)
	if err := tbl.Insert(1, 7, vte); err != nil { // 256B class
		t.Fatal(err)
	}
	base := tbl.Enc.Encode(1, 7)

	pa, fault := tbl.Translate(base+10, 3, PermR)
	if fault != FaultNone || pa != 0x9000+10 {
		t.Fatalf("translate: pa=%#x fault=%v", pa, fault)
	}
	// Write with only read permission.
	if _, fault := tbl.Translate(base, 3, PermW); fault != FaultPermission {
		t.Fatalf("write fault = %v, want permission", fault)
	}
	// A PD with no grant at all.
	if _, fault := tbl.Translate(base, 4, PermR); fault != FaultPermission {
		t.Fatalf("foreign PD fault = %v, want permission", fault)
	}
	// Unmapped address.
	if _, fault := tbl.Translate(tbl.Enc.Encode(1, 8), 3, PermR); fault != FaultUnmapped {
		t.Fatal("unmapped address should report FaultUnmapped")
	}
	// Address entirely outside the Jord region.
	if _, fault := tbl.Translate(0x1234, 3, PermR); fault != FaultUnmapped {
		t.Fatal("foreign address should report FaultUnmapped")
	}
	// Global VMA is readable from any PD.
	g := &VTE{Bound: 128, Offs: 0xa000, Global: true, GlobalPerm: PermRX}
	if err := tbl.Insert(0, 9, g); err != nil {
		t.Fatal(err)
	}
	if _, fault := tbl.Translate(tbl.Enc.Encode(0, 9), 1234, PermX); fault != FaultNone {
		t.Fatalf("global exec fault = %v, want none", fault)
	}
}

func TestFaultKindString(t *testing.T) {
	for _, k := range []FaultKind{FaultNone, FaultUnmapped, FaultPermission, FaultPrivilege, FaultGate} {
		if k.String() == "" {
			t.Errorf("empty string for fault %d", k)
		}
	}
}

// Property: translation of any in-bound offset returns Offs+offset.
func TestQuickTranslateOffsets(t *testing.T) {
	tbl := newTable(t)
	vte := &VTE{Bound: 4096, Offs: 0x40000}
	vte.SetPerm(1, PermRW)
	if err := tbl.Insert(5, 3, vte); err != nil { // 4KB class
		t.Fatal(err)
	}
	base := tbl.Enc.Encode(5, 3)
	f := func(off uint16) bool {
		o := uint64(off) % 4096
		pa, fault := tbl.Translate(base+o, 1, PermR)
		return fault == FaultNone && pa == 0x40000+o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
