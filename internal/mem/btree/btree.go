// Package btree implements the B-tree VMA table used by the JordBT variant
// (paper §5, §6.2, Figure 13). Where the plain list computes a VTE's
// position from the address alone, the B-tree must be traversed and
// rebalanced; every operation therefore reports how many nodes it touched
// and how many splits/merges/rotations it performed, which the timing
// layer converts into the extra walk latency (~20 ns VLB miss penalty vs
// 2 ns) and PrivLib management time (+167%) the paper measures.
package btree

import (
	"fmt"
	"sort"

	"jord/internal/mem/vmatable"
)

// degree is the minimum B-tree degree t: nodes hold t-1..2t-1 keys.
const degree = 4

// Entry is one VMA record keyed by its base address.
type Entry struct {
	Base  uint64
	Bound uint64
	VTE   *vmatable.VTE
}

// OpStats records the structural work of one operation.
type OpStats struct {
	NodesVisited int
	Splits       int
	Merges       int
	Rotations    int
}

// Add accumulates other into s.
func (s *OpStats) Add(other OpStats) {
	s.NodesVisited += other.NodesVisited
	s.Splits += other.Splits
	s.Merges += other.Merges
	s.Rotations += other.Rotations
}

type node struct {
	keys     []Entry
	children []*node
	leaf     bool
}

// Tree is a B-tree of VMAs ordered by base address.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of VMAs stored.
func (t *Tree) Len() int { return t.size }

// Lookup finds the VMA containing addr: the entry with the greatest base
// <= addr whose bound covers the offset.
func (t *Tree) Lookup(addr uint64) (Entry, OpStats, bool) {
	var st OpStats
	var best *Entry
	n := t.root
	for n != nil {
		st.NodesVisited++
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i].Base > addr })
		if i > 0 {
			best = &n.keys[i-1]
		}
		if n.leaf {
			break
		}
		n = n.children[i]
	}
	if best == nil || addr-best.Base >= best.Bound {
		return Entry{}, st, false
	}
	return *best, st, true
}

// Insert adds a VMA. Overlapping or duplicate base addresses are rejected.
func (t *Tree) Insert(e Entry) (OpStats, error) {
	if e.Bound == 0 {
		return OpStats{}, fmt.Errorf("btree: zero bound")
	}
	var st OpStats
	// Overlap check against neighbours.
	if prev, _, ok := t.Lookup(e.Base); ok {
		return st, fmt.Errorf("btree: %#x overlaps VMA at %#x", e.Base, prev.Base)
	}
	if next, ok := t.ceiling(e.Base); ok && next.Base < e.Base+e.Bound {
		return st, fmt.Errorf("btree: %#x+%d overlaps VMA at %#x", e.Base, e.Bound, next.Base)
	}

	r := t.root
	if len(r.keys) == 2*degree-1 {
		newRoot := &node{children: []*node{r}}
		newRoot.splitChild(0)
		st.Splits++
		t.root = newRoot
		r = newRoot
	}
	t.insertNonFull(r, e, &st)
	t.size++
	return st, nil
}

// ceiling returns the entry with the smallest base >= addr.
func (t *Tree) ceiling(addr uint64) (Entry, bool) {
	var best *Entry
	n := t.root
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i].Base >= addr })
		if i < len(n.keys) {
			best = &n.keys[i]
		}
		if n.leaf {
			break
		}
		n = n.children[i]
	}
	if best == nil {
		return Entry{}, false
	}
	return *best, true
}

func (t *Tree) insertNonFull(n *node, e Entry, st *OpStats) {
	for {
		st.NodesVisited++
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i].Base > e.Base })
		if n.leaf {
			n.keys = append(n.keys, Entry{})
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = e
			return
		}
		if len(n.children[i].keys) == 2*degree-1 {
			n.splitChild(i)
			st.Splits++
			if e.Base > n.keys[i].Base {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits n.children[i] (which must be full) around its median.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	median := child.keys[mid]

	right := &node{leaf: child.leaf}
	right.keys = append(right.keys, child.keys[mid+1:]...)
	child.keys = child.keys[:mid]
	if !child.leaf {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}

	n.keys = append(n.keys, Entry{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes the VMA with the given base address, reporting whether it
// existed.
func (t *Tree) Delete(base uint64) (OpStats, bool) {
	var st OpStats
	if !t.contains(base) {
		return st, false
	}
	t.delete(t.root, base, &st)
	if len(t.root.keys) == 0 && !t.root.leaf {
		t.root = t.root.children[0]
	}
	t.size--
	return st, true
}

func (t *Tree) contains(base uint64) bool {
	e, _, ok := t.Lookup(base)
	return ok && e.Base == base
}

// delete removes base from the subtree rooted at n, which is guaranteed to
// contain it. n always has at least degree keys when descended into
// (except the root).
func (t *Tree) delete(n *node, base uint64, st *OpStats) {
	st.NodesVisited++
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i].Base >= base })

	if i < len(n.keys) && n.keys[i].Base == base {
		if n.leaf {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			return
		}
		// Internal node: replace with predecessor or successor, or merge.
		if len(n.children[i].keys) >= degree {
			pred := maxEntry(n.children[i], st)
			n.keys[i] = pred
			t.delete(n.children[i], pred.Base, st)
			return
		}
		if len(n.children[i+1].keys) >= degree {
			succ := minEntry(n.children[i+1], st)
			n.keys[i] = succ
			t.delete(n.children[i+1], succ.Base, st)
			return
		}
		n.mergeChildren(i)
		st.Merges++
		t.delete(n.children[i], base, st)
		return
	}

	// Key is in the subtree at children[i]; top up the child first.
	child := n.children[i]
	if len(child.keys) < degree {
		i = n.fill(i, st)
		child = n.children[i]
	}
	t.delete(child, base, st)
}

// fill ensures children[i] has at least degree keys by borrowing from a
// sibling or merging, returning the (possibly shifted) child index that
// now contains the search path.
func (n *node) fill(i int, st *OpStats) int {
	if i > 0 && len(n.children[i-1].keys) >= degree {
		n.borrowFromLeft(i)
		st.Rotations++
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) >= degree {
		n.borrowFromRight(i)
		st.Rotations++
		return i
	}
	if i < len(n.children)-1 {
		n.mergeChildren(i)
		st.Merges++
		return i
	}
	n.mergeChildren(i - 1)
	st.Merges++
	return i - 1
}

func (n *node) borrowFromLeft(i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append([]Entry{n.keys[i-1]}, child.keys...)
	n.keys[i-1] = left.keys[len(left.keys)-1]
	left.keys = left.keys[:len(left.keys)-1]
	if !child.leaf {
		child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

func (n *node) borrowFromRight(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	n.keys[i] = right.keys[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	if !child.leaf {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// mergeChildren folds children[i+1] and the separator key into children[i].
func (n *node) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.keys = append(child.keys, right.keys...)
	child.children = append(child.children, right.children...)
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func maxEntry(n *node, st *OpStats) Entry {
	for !n.leaf {
		st.NodesVisited++
		n = n.children[len(n.children)-1]
	}
	st.NodesVisited++
	return n.keys[len(n.keys)-1]
}

func minEntry(n *node, st *OpStats) Entry {
	for !n.leaf {
		st.NodesVisited++
		n = n.children[0]
	}
	st.NodesVisited++
	return n.keys[0]
}

// Height returns the tree height (1 for a lone root).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// Check validates B-tree invariants (sorted keys, node occupancy, uniform
// leaf depth); it is used by tests.
func (t *Tree) Check() error {
	_, err := t.check(t.root, true, 0, ^uint64(0))
	return err
}

func (t *Tree) check(n *node, isRoot bool, lo, hi uint64) (depth int, err error) {
	if !isRoot && len(n.keys) < degree-1 {
		return 0, fmt.Errorf("btree: underfull node (%d keys)", len(n.keys))
	}
	if len(n.keys) > 2*degree-1 {
		return 0, fmt.Errorf("btree: overfull node (%d keys)", len(n.keys))
	}
	for i, k := range n.keys {
		if k.Base < lo || k.Base > hi {
			return 0, fmt.Errorf("btree: key %#x out of range [%#x,%#x]", k.Base, lo, hi)
		}
		if i > 0 && n.keys[i-1].Base >= k.Base {
			return 0, fmt.Errorf("btree: keys out of order")
		}
	}
	if n.leaf {
		if len(n.children) != 0 {
			return 0, fmt.Errorf("btree: leaf with children")
		}
		return 1, nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, fmt.Errorf("btree: %d children for %d keys", len(n.children), len(n.keys))
	}
	want := -1
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1].Base + 1
		}
		if i < len(n.keys) {
			chi = n.keys[i].Base - 1
		}
		d, err := t.check(c, false, clo, chi)
		if err != nil {
			return 0, err
		}
		if want == -1 {
			want = d
		} else if d != want {
			return 0, fmt.Errorf("btree: uneven leaf depth")
		}
	}
	return want + 1, nil
}
