package btree

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyLookup(t *testing.T) {
	tr := New()
	if _, _, ok := tr.Lookup(42); ok {
		t.Fatal("lookup in empty tree succeeded")
	}
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
}

func TestInsertLookup(t *testing.T) {
	tr := New()
	if _, err := tr.Insert(Entry{Base: 0x1000, Bound: 0x100}); err != nil {
		t.Fatal(err)
	}
	e, _, ok := tr.Lookup(0x1050)
	if !ok || e.Base != 0x1000 {
		t.Fatalf("lookup mid-VMA: ok=%v base=%#x", ok, e.Base)
	}
	if _, _, ok := tr.Lookup(0x1100); ok {
		t.Fatal("lookup past bound succeeded")
	}
	if _, _, ok := tr.Lookup(0xfff); ok {
		t.Fatal("lookup below base succeeded")
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	tr := New()
	mustInsert(t, tr, 0x1000, 0x100)
	if _, err := tr.Insert(Entry{Base: 0x1000, Bound: 0x10}); err == nil {
		t.Error("duplicate base accepted")
	}
	if _, err := tr.Insert(Entry{Base: 0x10f0, Bound: 0x10}); err == nil {
		t.Error("overlap with existing tail accepted")
	}
	if _, err := tr.Insert(Entry{Base: 0xff0, Bound: 0x20}); err == nil {
		t.Error("overlap with existing head accepted")
	}
	if _, err := tr.Insert(Entry{Base: 0x2000, Bound: 0}); err == nil {
		t.Error("zero bound accepted")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
}

func mustInsert(t *testing.T, tr *Tree, base, bound uint64) {
	t.Helper()
	if _, err := tr.Insert(Entry{Base: base, Bound: bound}); err != nil {
		t.Fatal(err)
	}
}

func TestManyInsertDeleteInvariants(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewPCG(1, 2))
	live := map[uint64]bool{}
	// Non-overlapping 16-byte VMAs on a 64-byte grid.
	for i := 0; i < 2000; i++ {
		base := uint64(rng.IntN(4000)) * 64
		if live[base] {
			st, ok := tr.Delete(base)
			if !ok {
				t.Fatalf("delete of live base %#x failed", base)
			}
			if st.NodesVisited == 0 {
				t.Fatal("delete visited no nodes")
			}
			delete(live, base)
		} else {
			if _, err := tr.Insert(Entry{Base: base, Bound: 16}); err != nil {
				t.Fatalf("insert %#x: %v", base, err)
			}
			live[base] = true
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("invariant broken after op %d: %v", i, err)
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(live))
	}
	for base := range live {
		e, _, ok := tr.Lookup(base + 5)
		if !ok || e.Base != base {
			t.Fatalf("live VMA %#x not found", base)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	mustInsert(t, tr, 0x1000, 0x10)
	if _, ok := tr.Delete(0x2000); ok {
		t.Fatal("deleted a missing key")
	}
	if tr.Len() != 1 {
		t.Fatal("length changed on failed delete")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		mustInsert(t, tr, uint64(i)*64, 16)
	}
	if h := tr.Height(); h < 3 || h > 8 {
		t.Fatalf("height = %d for 10k entries, want O(log n) in [3,8]", h)
	}
}

func TestRebalancingWorkIsReported(t *testing.T) {
	tr := New()
	var splits int
	for i := 0; i < 1000; i++ {
		st, err := tr.Insert(Entry{Base: uint64(i) * 64, Bound: 16})
		if err != nil {
			t.Fatal(err)
		}
		splits += st.Splits
	}
	if splits == 0 {
		t.Fatal("1000 sequential inserts produced no splits")
	}
	var merges, rotations int
	for i := 0; i < 1000; i++ {
		st, ok := tr.Delete(uint64(i) * 64)
		if !ok {
			t.Fatalf("delete %d failed", i)
		}
		merges += st.Merges
		rotations += st.Rotations
	}
	if merges+rotations == 0 {
		t.Fatal("draining the tree produced no rebalancing")
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after drain, want 0", tr.Len())
	}
}

func TestLookupCostExceedsPlainList(t *testing.T) {
	// The motivation for the plain list: B-tree lookups touch multiple
	// nodes, the plain list exactly one position.
	tr := New()
	for i := 0; i < 5000; i++ {
		mustInsert(t, tr, uint64(i)*128, 64)
	}
	_, st, ok := tr.Lookup(2500 * 128)
	if !ok {
		t.Fatal("lookup failed")
	}
	if st.NodesVisited < 2 {
		t.Fatalf("expected multi-node traversal, visited %d", st.NodesVisited)
	}
}

// Property: the tree agrees with a sorted-slice reference model.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seeds []uint16) bool {
		tr := New()
		ref := map[uint64]bool{}
		for _, s := range seeds {
			base := uint64(s) * 32
			if ref[base] {
				if _, ok := tr.Delete(base); !ok {
					return false
				}
				delete(ref, base)
			} else {
				if _, err := tr.Insert(Entry{Base: base, Bound: 32}); err != nil {
					return false
				}
				ref[base] = true
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			e, _, ok := tr.Lookup(k + 31)
			if !ok || e.Base != k {
				return false
			}
		}
		return tr.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
