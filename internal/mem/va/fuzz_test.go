package va

import "testing"

// FuzzDecode throws arbitrary addresses at the decoder: it must never
// panic, and anything it accepts must re-encode to the same address.
func FuzzDecode(f *testing.F) {
	e := Default()
	f.Add(uint64(0))
	f.Add(e.Encode(0, 1))
	f.Add(e.Encode(25, 0) | 0x7fff)
	f.Add(^uint64(0))
	f.Add(e.TopBits << uint(e.VABits-e.TopWidth))
	f.Fuzz(func(t *testing.T, addr uint64) {
		d, ok := e.Decode(addr)
		if !ok {
			return
		}
		if d.Class < 0 || d.Class >= e.NumClasses() {
			t.Fatalf("class %d out of range", d.Class)
		}
		if d.Offset >= e.ClassSize(d.Class) {
			t.Fatalf("offset %#x exceeds class size", d.Offset)
		}
		if d.Index >= e.MaxIndex(d.Class) {
			t.Fatalf("index %#x exceeds format", d.Index)
		}
		round := e.Encode(d.Class, d.Index) | d.Offset
		if round != addr {
			t.Fatalf("round trip %#x -> %#x", addr, round)
		}
	})
}

// FuzzClassFor checks the size-class mapper on arbitrary sizes.
func FuzzClassFor(f *testing.F) {
	e := Default()
	f.Add(uint64(1))
	f.Add(uint64(128))
	f.Add(uint64(4 << 30))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, size uint64) {
		c, err := e.ClassFor(size)
		if err != nil {
			return // too large or zero: rejected is fine
		}
		if e.ClassSize(c) < size {
			t.Fatalf("class %d (%d bytes) cannot hold %d", c, e.ClassSize(c), size)
		}
		if c > 0 && e.ClassSize(c-1) >= size {
			t.Fatalf("class %d not minimal for %d", c, size)
		}
	})
}
