package va

import (
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNumClasses(t *testing.T) {
	e := Default()
	if e.NumClasses() != 26 {
		t.Fatalf("classes = %d, want 26 (128B..4GB)", e.NumClasses())
	}
	if e.ClassSize(0) != 128 {
		t.Fatalf("smallest class = %d, want 128", e.ClassSize(0))
	}
	if e.ClassSize(25) != 4<<30 {
		t.Fatalf("largest class = %d, want 4GB", e.ClassSize(25))
	}
}

func TestPaperASLREntropy(t *testing.T) {
	e := Default()
	// §4.1: 26 size classes cost 5 bits of entropy, leaving 29 bits of
	// randomization for the smallest (128 B) class.
	if e.EntropyReductionBits() != 5 {
		t.Fatalf("entropy reduction = %d bits, want 5", e.EntropyReductionBits())
	}
	if e.IndexBits(0) != 29 {
		t.Fatalf("128B-class index bits = %d, want 29", e.IndexBits(0))
	}
}

func TestClassFor(t *testing.T) {
	e := Default()
	cases := []struct {
		size uint64
		want int
	}{
		{1, 0},   // rounds up to 128 B
		{128, 0}, // exactly the smallest class
		{129, 1}, // next class (256 B)
		{256, 1},
		{1024, 3},
		{4096, 5},
		{1 << 20, 13},
		{4 << 30, 25},
	}
	for _, c := range cases {
		got, err := e.ClassFor(c.size)
		if err != nil {
			t.Fatalf("ClassFor(%d): %v", c.size, err)
		}
		if got != c.want {
			t.Errorf("ClassFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if _, err := e.ClassFor(0); err == nil {
		t.Error("ClassFor(0) should fail")
	}
	if _, err := e.ClassFor(8 << 30); err == nil {
		t.Error("ClassFor(8GB) should fail")
	}
}

func TestClassForFitsSize(t *testing.T) {
	e := Default()
	f := func(size uint64) bool {
		size = size%(4<<30) + 1
		c, err := e.ClassFor(size)
		if err != nil {
			return false
		}
		if e.ClassSize(c) < size {
			return false // chunk must hold the allocation
		}
		// Minimal: previous class (if any) must be too small.
		return c == 0 || e.ClassSize(c-1) < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := Default()
	f := func(cRaw uint8, idxRaw, offRaw uint64) bool {
		c := int(cRaw) % e.NumClasses()
		idx := idxRaw % e.MaxIndex(c)
		off := offRaw % e.ClassSize(c)
		addr := e.Encode(c, idx) | off
		d, ok := e.Decode(addr)
		return ok && d.Class == c && d.Index == idx && d.Offset == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsForeignAddresses(t *testing.T) {
	e := Default()
	// Wrong top bits: an ordinary page-table VA.
	if _, ok := e.Decode(0x7fff_0000_1000); ok {
		t.Error("decoded an address outside the Jord region")
	}
	// Beyond VA width.
	if _, ok := e.Decode(1 << 60); ok {
		t.Error("decoded an over-wide address")
	}
	// Right top bits but SC value beyond the class count.
	bad := e.TopBits<<uint(e.VABits-e.TopWidth) | uint64(31)<<uint(e.scShift())
	if _, ok := e.Decode(bad); ok {
		t.Error("decoded an undefined size class")
	}
}

func TestEncodeDistinctAddresses(t *testing.T) {
	// Base addresses of different (class, index) pairs never collide —
	// the property that makes the plain list position injective.
	e := Default()
	seen := make(map[uint64]string)
	for c := 0; c < e.NumClasses(); c++ {
		for idx := uint64(0); idx < 8; idx++ {
			a := e.Encode(c, idx)
			key := string(rune(c)) + ":" + string(rune(idx))
			if prev, dup := seen[a]; dup {
				t.Fatalf("collision: %s and %s both encode to %#x", prev, key, a)
			}
			seen[a] = key
		}
	}
}

func TestContains(t *testing.T) {
	e := Default()
	base := e.Encode(3, 5) // 1 KB class
	if !e.Contains(base, 3, 5, 100) {
		t.Error("base address should be contained")
	}
	if !e.Contains(base+99, 3, 5, 100) {
		t.Error("last byte should be contained")
	}
	if e.Contains(base+100, 3, 5, 100) {
		t.Error("address past bound should not be contained (even inside the chunk)")
	}
	if e.Contains(base, 3, 6, 100) {
		t.Error("wrong index should not match")
	}
	if e.Contains(0x1000, 3, 5, 100) {
		t.Error("foreign address should not match")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	e := Default()
	e.SCWidth = 4 // 26 classes do not fit in 4 bits
	if err := e.Validate(); err == nil {
		t.Error("expected SC-width error")
	}
	e = Default()
	e.TopBits = 1 << 7
	if err := e.Validate(); err == nil {
		t.Error("expected TopBits overflow error")
	}
	e = Default()
	e.MinShift, e.MaxShift = 32, 7
	if err := e.Validate(); err == nil {
		t.Error("expected shift-order error")
	}
}
