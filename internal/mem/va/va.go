// Package va implements Jord's size-class-embedded virtual address
// encoding (paper §4.1, Figure 6).
//
// The virtual address space region managed by Jord is identified by fixed
// Top bits. Below them, an SC field names the VMA's size class, and the
// remaining bits split into a per-class index and an intra-VMA offset:
//
//	| Top | SC | Index | Offset |
//
// Size classes are the power-of-two sizes between 128 B (2^7) and 4 GB
// (2^32) — 26 classes. Because the class is recoverable from the address
// alone, the VMA table can be a flat array ("plain list") whose entry
// position is a pure function f(class, index), and the hardware walker
// needs no pointer chasing. The exact field layout is what the uatc CSR
// configures in hardware; the Encoding struct is the software model of
// that CSR.
package va

import (
	"fmt"
	"math/bits"
)

// Default format parameters, matching the paper's implementation: 48-bit
// virtual addresses, 26 size classes (128 B .. 4 GB), a 5-bit SC field and
// 7 Top bits — which leaves 29 index bits for the 128-byte class, the
// paper's quoted ASLR entropy.
const (
	DefaultVABits   = 48
	DefaultTopWidth = 7
	DefaultTopBits  = 0x55 // arbitrary non-zero pattern in the top 7 bits
	DefaultSCWidth  = 5
	DefaultMinShift = 7  // 128 B
	DefaultMaxShift = 32 // 4 GB
)

// Encoding is the software model of the uatc CSR: it defines how size
// class, index, and offset are packed into a virtual address.
type Encoding struct {
	VABits   int    // total significant VA bits
	TopWidth int    // width of the Top field
	TopBits  uint64 // value of the Top field for Jord-managed VAs
	SCWidth  int    // width of the SC field
	MinShift int    // log2 of the smallest size class
	MaxShift int    // log2 of the largest size class
}

// Default returns the paper's encoding.
func Default() Encoding {
	return Encoding{
		VABits:   DefaultVABits,
		TopWidth: DefaultTopWidth,
		TopBits:  DefaultTopBits,
		SCWidth:  DefaultSCWidth,
		MinShift: DefaultMinShift,
		MaxShift: DefaultMaxShift,
	}
}

// Validate checks that the encoding is self-consistent: every class must
// have at least one index bit and the SC field must be wide enough to name
// all classes.
func (e Encoding) Validate() error {
	if e.VABits <= 0 || e.VABits > 64 {
		return fmt.Errorf("va: bad VABits %d", e.VABits)
	}
	if e.MinShift > e.MaxShift {
		return fmt.Errorf("va: MinShift %d > MaxShift %d", e.MinShift, e.MaxShift)
	}
	if n := e.NumClasses(); n > 1<<e.SCWidth {
		return fmt.Errorf("va: %d classes exceed SC field width %d", n, e.SCWidth)
	}
	if e.TopBits >= 1<<uint(e.TopWidth) {
		return fmt.Errorf("va: TopBits %#x does not fit in %d bits", e.TopBits, e.TopWidth)
	}
	if e.IndexBits(e.NumClasses()-1) < 1 {
		return fmt.Errorf("va: largest class has no index bits")
	}
	return nil
}

// NumClasses returns the number of size classes.
func (e Encoding) NumClasses() int { return e.MaxShift - e.MinShift + 1 }

// ClassShift returns log2 of the size of class c.
func (e Encoding) ClassShift(c int) int { return e.MinShift + c }

// ClassSize returns the byte size of class c.
func (e Encoding) ClassSize(c int) uint64 { return 1 << uint(e.ClassShift(c)) }

// ClassFor returns the smallest size class whose chunks can hold size
// bytes, or an error if size exceeds the largest class.
func (e Encoding) ClassFor(size uint64) (int, error) {
	if size == 0 {
		return 0, fmt.Errorf("va: zero-size allocation")
	}
	shift := bits.Len64(size - 1) // ceil(log2(size))
	if shift < e.MinShift {
		shift = e.MinShift
	}
	if shift > e.MaxShift {
		return 0, fmt.Errorf("va: size %d exceeds largest class %d", size, e.ClassSize(e.NumClasses()-1))
	}
	return shift - e.MinShift, nil
}

// IndexBits returns the number of index bits available to class c — also
// the ASLR entropy left for allocations of that class (paper §4.1: 29 bits
// for the 128-byte class under the default format).
func (e Encoding) IndexBits(c int) int {
	return e.VABits - e.TopWidth - e.SCWidth - e.ClassShift(c)
}

// MaxIndex returns the number of addressable VMAs in class c under the VA
// format alone (the table size may cap it lower).
func (e Encoding) MaxIndex(c int) uint64 { return 1 << uint(e.IndexBits(c)) }

// EntropyReductionBits returns how many bits of ASLR entropy the encoding
// costs relative to a traditional layout, i.e. the SC field width.
func (e Encoding) EntropyReductionBits() int { return e.SCWidth }

// scShift returns the bit position of the SC field.
func (e Encoding) scShift() int { return e.VABits - e.TopWidth - e.SCWidth }

// Encode builds the base VA of the VMA (class c, index idx).
func (e Encoding) Encode(c int, idx uint64) uint64 {
	if c < 0 || c >= e.NumClasses() {
		panic(fmt.Sprintf("va: class %d out of range", c))
	}
	if idx >= e.MaxIndex(c) {
		panic(fmt.Sprintf("va: index %d out of range for class %d", idx, c))
	}
	top := e.TopBits << uint(e.VABits-e.TopWidth)
	sc := uint64(c) << uint(e.scShift())
	return top | sc | idx<<uint(e.ClassShift(c))
}

// Decoded is the result of decoding a Jord-managed VA.
type Decoded struct {
	Class  int
	Index  uint64
	Offset uint64
}

// Decode splits a VA into class, index, and offset. ok is false when the
// address is outside the Jord-managed region (wrong Top bits or an SC
// value with no defined class) — such addresses fall through to the
// conventional page-table path.
func (e Encoding) Decode(addr uint64) (Decoded, bool) {
	if addr>>uint(e.VABits) != 0 {
		return Decoded{}, false
	}
	if addr>>uint(e.VABits-e.TopWidth) != e.TopBits {
		return Decoded{}, false
	}
	c := int(addr >> uint(e.scShift()) & (1<<uint(e.SCWidth) - 1))
	if c >= e.NumClasses() {
		return Decoded{}, false
	}
	shift := uint(e.ClassShift(c))
	mask := uint64(1)<<uint(e.scShift()) - 1
	body := addr & mask
	return Decoded{
		Class:  c,
		Index:  body >> shift,
		Offset: body & (1<<shift - 1),
	}, true
}

// Contains reports whether addr lies inside the VMA (class c, index idx)
// limited to bound bytes (the VMA's requested size, which may be smaller
// than the class size; the trailing chunk space is reserved for resizing).
func (e Encoding) Contains(addr uint64, c int, idx, bound uint64) bool {
	d, ok := e.Decode(addr)
	if !ok || d.Class != c || d.Index != idx {
		return false
	}
	return d.Offset < bound
}
