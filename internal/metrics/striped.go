package metrics

import "sync/atomic"

// paddedUint64 is an atomic counter alone on its cache line, so two shards
// incremented by different cores never false-share. 64 bytes covers the
// common x86/arm64 line size (Go's own internal/cpu uses the same figure).
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// StripedUint64 is a monotonically increasing counter sharded across cache
// lines: writers on different shards (executors, orchestrators) increment
// private lines and never contend, readers sum the shards. It is the
// counter analogue of ShardedHistogram — built for counters bumped on every
// request from every core (Stats.Completed, FuncStats.Count), where a
// single atomic.Uint64 line ping-pongs between cores.
//
// SetShards must be called before concurrent use (the pool does it at
// Start). The zero value tolerates AddShard/Load before SetShards by
// falling back to a single inline shard, so tests that poke a zero Stats
// still work.
type StripedUint64 struct {
	shards   []paddedUint64
	fallback paddedUint64 // used until SetShards is called
}

// SetShards sizes the stripe set (one shard per writer core/executor).
// Not safe to call concurrently with writers; call once at setup.
func (s *StripedUint64) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	s.shards = make([]paddedUint64, n)
}

// AddShard adds delta on the given shard's private line. Out-of-range
// shards (e.g. the sweeper's -1) fold onto shard 0.
func (s *StripedUint64) AddShard(shard int, delta uint64) {
	if s.shards == nil {
		s.fallback.v.Add(delta)
		return
	}
	if shard < 0 || shard >= len(s.shards) {
		shard = 0
	}
	s.shards[shard].v.Add(delta)
}

// Add adds delta on shard 0 — for callers with no natural shard identity.
func (s *StripedUint64) Add(delta uint64) { s.AddShard(0, delta) }

// Load returns the counter's current total (sum of all shards). Reads are
// not a snapshot across shards — fine for monotonic counters.
func (s *StripedUint64) Load() uint64 {
	total := s.fallback.v.Load()
	for i := range s.shards {
		total += s.shards[i].v.Load()
	}
	return total
}
