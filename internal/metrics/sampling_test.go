package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%f", s.N, s.Mean)
	}
	if s.Min != 2 || s.Max != 8 {
		t.Fatalf("min/max = %f/%f", s.Min, s.Max)
	}
	// Sample stddev of {2,4,6,8} is sqrt(20/3).
	want := math.Sqrt(20.0 / 3.0)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("stddev = %f, want %f", s.StdDev, want)
	}
	// CI95 with df=3: 3.182 * sd/sqrt(4).
	wantCI := 3.182 * want / 2
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Fatalf("ci = %f, want %f", s.CI95, wantCI)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.CI95 != 0 {
		t.Fatalf("single-sample: mean=%f ci=%f", s.Mean, s.CI95)
	}
	if Summarize([]float64{0, 0}).RelCI() != 0 {
		t.Fatal("RelCI of zero mean should be 0")
	}
}

func TestCICoversTrueMean(t *testing.T) {
	// Draw repeated trials from a known distribution: the 95% CI should
	// cover the true mean in roughly 95% of experiments.
	rng := rand.New(rand.NewPCG(5, 5))
	const trueMean = 100.0
	covered := 0
	const experiments = 400
	for e := 0; e < experiments; e++ {
		vals := make([]float64, 8)
		for i := range vals {
			vals[i] = trueMean + rng.NormFloat64()*15
		}
		s := Summarize(vals)
		if math.Abs(s.Mean-trueMean) <= s.CI95 {
			covered++
		}
	}
	frac := float64(covered) / experiments
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("CI coverage = %.3f, want ~0.95", frac)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, df := range []int{1, 2, 3, 5, 10, 20, 30, 100} {
		q := tQuantile(df)
		if q > prev {
			t.Fatalf("t quantile not decreasing at df=%d", df)
		}
		prev = q
	}
	if tQuantile(0) != 0 {
		t.Fatal("df=0 should be 0")
	}
	if tQuantile(12) < tQuantile(15) {
		t.Fatal("untabulated df should use a conservative (larger) quantile")
	}
}
