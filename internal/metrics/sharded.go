package metrics

// ShardedHistogram spreads Record traffic across per-shard Histograms so
// concurrent recorders (the live path's executors) never contend on one
// mutex, and merges the shards on every read. Writers are expected to be
// orders of magnitude more frequent than readers (/statsz polls, test
// assertions), so the merge cost sits on the cold side.
//
// The zero value is ready to use: until SetShards is called, all records
// land in a single fallback histogram, which keeps the type drop-in
// compatible with Histogram for single-recorder users.
type ShardedHistogram struct {
	// shards are individually heap-allocated so adjacent shards do not
	// share cache lines through one backing array.
	shards   []*Histogram
	fallback Histogram
}

// SetShards sizes the histogram for n concurrent recorders. It must be
// called before any Record traffic (the live pool calls it at Start, while
// the registry is frozen and no executor is running).
func (s *ShardedHistogram) SetShards(n int) {
	s.shards = make([]*Histogram, n)
	for i := range s.shards {
		s.shards[i] = &Histogram{}
	}
}

// RecordShard adds one sample on the given shard. Out-of-range shards
// (including any shard before SetShards) fall back to the shared histogram.
func (s *ShardedHistogram) RecordShard(shard int, v int64) {
	if shard >= 0 && shard < len(s.shards) {
		s.shards[shard].Record(v)
		return
	}
	s.fallback.Record(v)
}

// Record adds one sample on the fallback shard (single-recorder use).
func (s *ShardedHistogram) Record(v int64) { s.fallback.Record(v) }

// merged folds the fallback and every shard into one histogram.
func (s *ShardedHistogram) merged() *Histogram {
	var m Histogram
	m.Merge(&s.fallback)
	for _, h := range s.shards {
		m.Merge(h)
	}
	return &m
}

// Count returns the total number of samples across all shards.
func (s *ShardedHistogram) Count() uint64 {
	n := s.fallback.Count()
	for _, h := range s.shards {
		n += h.Count()
	}
	return n
}

// Mean returns the sample mean across all shards.
func (s *ShardedHistogram) Mean() float64 { return s.merged().Mean() }

// Percentile returns the merged p-th percentile.
func (s *ShardedHistogram) Percentile(p float64) int64 { return s.merged().Percentile(p) }

// Snapshot returns the merged headline statistics.
func (s *ShardedHistogram) Snapshot() Snapshot { return s.merged().Snapshot() }

// String summarizes the merged distribution.
func (s *ShardedHistogram) String() string { return s.merged().String() }
