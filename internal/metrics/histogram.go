// Package metrics provides the measurement machinery of the evaluation:
// HDR-style log-linear latency histograms (p50/p99/p99.9 with bounded
// relative error), service-time CDFs, and throughput-under-SLO extraction
// from load sweeps — the paper's primary performance metric (§5).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// subBits gives 2^subBits sub-buckets per power of two: ~1.5% worst-case
// relative error on recorded values.
const subBits = 6

// Histogram is a log-linear histogram of non-negative int64 samples
// (typically nanoseconds or cycles). The zero value is ready to use.
//
// All methods are safe for concurrent use: the simulator records from a
// single goroutine, but the live serving path (internal/server) records
// from every executor at once. Recording takes one uncontended mutex
// acquisition, which is negligible next to the work being measured.
type Histogram struct {
	mu      sync.Mutex
	buckets []uint64
	count   uint64
	sum     float64
	min     int64
	max     int64
}

func bucketIndex(v uint64) int {
	if v < 1<<subBits {
		return int(v)
	}
	k := bits.Len64(v)                                 // position of the leading 1, >= subBits+1
	sub := (v >> uint(k-subBits-1)) & (1<<subBits - 1) // the subBits bits after it
	return 1<<subBits + (k-subBits-1)*(1<<subBits) + int(sub)
}

// bucketUpper returns the largest value mapping to bucket i (inclusive).
func bucketUpper(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	exp := (i - 1<<subBits) / (1 << subBits)
	sub := (i - 1<<subBits) % (1 << subBits)
	base := uint64(1<<subBits|sub) << uint(exp)
	width := uint64(1) << uint(exp)
	return int64(base + width - 1)
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(uint64(v))
	h.mu.Lock()
	if idx >= len(h.buckets) {
		nb := make([]uint64, idx+1)
		copy(nb, h.buckets)
		h.buckets = nb
	}
	h.buckets[idx]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += float64(v)
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mean()
}

func (h *Histogram) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extreme samples.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns an upper bound for the p-th percentile (p in [0,100])
// with the histogram's relative precision. The 100th percentile returns
// the exact maximum.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentile(p)
}

func (h *Histogram) percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// CDF returns the cumulative distribution at bucket granularity, skipping
// empty buckets.
func (h *Histogram) CDF() []CDFPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{Value: bucketUpper(i), Fraction: float64(cum) / float64(h.count)})
	}
	return out
}

// Merge adds all samples of other into h (min/max/mean exact; bucket
// resolution preserved). Merging a histogram into itself is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if h == other {
		return
	}
	// Snapshot other first so the two locks are never held together
	// (concurrent a.Merge(b) and b.Merge(a) must not deadlock).
	other.mu.Lock()
	if other.count == 0 {
		other.mu.Unlock()
		return
	}
	obuckets := make([]uint64, len(other.buckets))
	copy(obuckets, other.buckets)
	ocount, osum, omin, omax := other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(obuckets) > len(h.buckets) {
		nb := make([]uint64, len(obuckets))
		copy(nb, h.buckets)
		h.buckets = nb
	}
	for i, c := range obuckets {
		h.buckets[i] += c
	}
	if h.count == 0 || omin < h.min {
		h.min = omin
	}
	if omax > h.max {
		h.max = omax
	}
	h.count += ocount
	h.sum += osum
}

// Snapshot is a one-shot consistent view of the headline statistics,
// for readers (like the live /statsz endpoint) that must not interleave
// with concurrent Record calls.
type Snapshot struct {
	Count          uint64
	Mean           float64
	Min, Max       int64
	P50, P99, P999 int64
}

// Snapshot returns a consistent Snapshot under one lock acquisition.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot{
		Count: h.count,
		Mean:  h.mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.percentile(50),
		P99:   h.percentile(99),
		P999:  h.percentile(99.9),
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d max=%d",
		h.count, h.mean(), h.percentile(50), h.percentile(99), h.max)
}
