// Package metrics provides the measurement machinery of the evaluation:
// HDR-style log-linear latency histograms (p50/p99/p99.9 with bounded
// relative error), service-time CDFs, and throughput-under-SLO extraction
// from load sweeps — the paper's primary performance metric (§5).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
)

// subBits gives 2^subBits sub-buckets per power of two: ~1.5% worst-case
// relative error on recorded values.
const subBits = 6

// Histogram is a log-linear histogram of non-negative int64 samples
// (typically nanoseconds or cycles). The zero value is ready to use.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     float64
	min     int64
	max     int64
}

func bucketIndex(v uint64) int {
	if v < 1<<subBits {
		return int(v)
	}
	k := bits.Len64(v)                                 // position of the leading 1, >= subBits+1
	sub := (v >> uint(k-subBits-1)) & (1<<subBits - 1) // the subBits bits after it
	return 1<<subBits + (k-subBits-1)*(1<<subBits) + int(sub)
}

// bucketUpper returns the largest value mapping to bucket i (inclusive).
func bucketUpper(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	exp := (i - 1<<subBits) / (1 << subBits)
	sub := (i - 1<<subBits) % (1 << subBits)
	base := uint64(1<<subBits|sub) << uint(exp)
	width := uint64(1) << uint(exp)
	return int64(base + width - 1)
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(uint64(v))
	if idx >= len(h.buckets) {
		nb := make([]uint64, idx+1)
		copy(nb, h.buckets)
		h.buckets = nb
	}
	h.buckets[idx]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += float64(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact extreme samples.
func (h *Histogram) Min() int64 { return h.min }
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns an upper bound for the p-th percentile (p in [0,100])
// with the histogram's relative precision. The 100th percentile returns
// the exact maximum.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// CDF returns the cumulative distribution at bucket granularity, skipping
// empty buckets.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{Value: bucketUpper(i), Fraction: float64(cum) / float64(h.count)})
	}
	return out
}

// Merge adds all samples of other into h (min/max/mean exact; bucket
// resolution preserved).
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if len(other.buckets) > len(h.buckets) {
		nb := make([]uint64, len(other.buckets))
		copy(nb, h.buckets)
		h.buckets = nb
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d max=%d",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.max)
}
