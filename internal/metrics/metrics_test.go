package metrics

import (
	"sync"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestExactSmallValues(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 64; i++ {
		h.Record(i)
	}
	// Values below 2^6 are exact: rank ceil(0.5*64)=32 -> 32nd smallest = 31.
	if got := h.Percentile(50); got != 31 {
		t.Fatalf("p50 = %d, want 31", got)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestPercentileRelativeError(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewPCG(7, 9))
	var samples []int64
	for i := 0; i < 50000; i++ {
		v := rng.Int64N(10_000_000) + 1
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		idx := int(p/100*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := float64(samples[idx])
		got := float64(h.Percentile(p))
		if rel := (got - exact) / exact; rel < -0.02 || rel > 0.04 {
			t.Errorf("p%.1f = %.0f, exact %.0f (rel err %.3f)", p, got, exact, rel)
		}
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatal("negative sample not clamped")
	}
}

func TestP100IsMax(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Record(99999)
	if h.Percentile(100) != 99999 {
		t.Fatalf("p100 = %d, want exact max", h.Percentile(100))
	}
}

func TestCDFMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 10000; i++ {
		h.Record(rng.Int64N(1_000_000))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value <= cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if last := cdf[len(cdf)-1].Fraction; last != 1.0 {
		t.Fatalf("CDF ends at %f, want 1.0", last)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(int64(i))
		b.Record(int64(i + 1000))
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1099 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 200 {
		t.Fatal("merging empty changed count")
	}
}

// Property: Percentile is monotone in p and bounded by [min, max].
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for _, p := range []float64{0, 10, 50, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev || v < 0 || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketIndex/bucketUpper are consistent: v <= bucketUpper(bucketIndex(v))
// and the bound is within ~1.6% of v.
func TestQuickBucketBounds(t *testing.T) {
	f := func(v uint64) bool {
		v %= 1 << 50
		u := bucketUpper(bucketIndex(v))
		if u < int64(v) {
			return false
		}
		return float64(u)-float64(v) <= float64(v)*0.017+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputUnderSLO(t *testing.T) {
	pts := []LoadPoint{
		{LoadRPS: 1e6, P99NS: 10_000},
		{LoadRPS: 2e6, P99NS: 12_000},
		{LoadRPS: 3e6, P99NS: 20_000},
		{LoadRPS: 4e6, P99NS: 100_000},
	}
	// SLO 20us: exactly at the third point.
	if got := ThroughputUnderSLO(pts, 20_000); got != 3e6 {
		t.Fatalf("got %.0f, want 3e6", got)
	}
	// SLO 60us: midway between 3 and 4 MRPS (20k..100k crossing at 60k).
	got := ThroughputUnderSLO(pts, 60_000)
	if got < 3.4e6 || got > 3.6e6 {
		t.Fatalf("interpolated = %.2e, want 3.5e6", got)
	}
	// SLO below the lightest load: zero.
	if got := ThroughputUnderSLO(pts, 5000); got != 0 {
		t.Fatalf("got %.0f, want 0", got)
	}
	// SLO above everything: the heaviest load.
	if got := ThroughputUnderSLO(pts, 1e9); got != 4e6 {
		t.Fatalf("got %.0f, want 4e6", got)
	}
	// Empty sweep.
	if got := ThroughputUnderSLO(nil, 1000); got != 0 {
		t.Fatal("empty sweep should give 0")
	}
}

func TestThroughputUnderSLONonMonotone(t *testing.T) {
	// A noisy sweep that dips back under the SLO after failing must not
	// credit loads beyond the first crossing.
	pts := []LoadPoint{
		{LoadRPS: 1e6, P99NS: 10_000},
		{LoadRPS: 2e6, P99NS: 50_000},
		{LoadRPS: 3e6, P99NS: 15_000},
	}
	got := ThroughputUnderSLO(pts, 20_000)
	if got < 1e6 || got >= 2e6 {
		t.Fatalf("got %.2e, want crossing in [1e6, 2e6)", got)
	}
}

// TestConcurrentRecord hammers one histogram from 8 goroutines while a
// reader polls percentiles — the live serving path's access pattern
// (executors record, /statsz reads). Run under -race in CI.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const (
		goroutines = 8
		perG       = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Percentile(99)
				_ = h.Snapshot()
				_ = h.String()
			}
		}
	}()
	var other Histogram
	other.Record(5)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(int64(g*perG + i))
				if i%4096 == 0 {
					// Concurrent merges must be safe too.
					var scratch Histogram
					scratch.Merge(&other)
				}
			}
		}(g)
	}
	// Wait for writers, then stop the reader.
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	close(stop)
	<-wgDone

	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost updates)", got, goroutines*perG)
	}
	if h.Min() != 0 || h.Max() != goroutines*perG-1 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

// TestMergeSelfAndCross checks the snapshot-based Merge: self-merge is a
// no-op and cross-merges from multiple goroutines neither deadlock nor
// lose samples.
func TestMergeSelfAndCross(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(&a)
	if a.Count() != 100 {
		t.Fatalf("self-merge changed count: %d", a.Count())
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); a.Merge(&b) }()
		go func() { defer wg.Done(); b.Merge(&a) }()
	}
	wg.Wait()
	if a.Count() == 0 || b.Count() == 0 {
		t.Fatal("merge lost everything")
	}
}
