package metrics

import "math"

// Summary is the statistical summary of repeated measurement trials —
// the SimFlex-style sampling methodology the paper's simulator lineage
// uses (its ref [84]): several short windows with independent seeds
// instead of one long run, reported with confidence intervals.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the 95% confidence half-width of the mean (Student's t).
	CI95 float64
	Min  float64
	Max  float64
}

// tTable holds two-sided 97.5% Student-t quantiles for small sample
// counts (df = n-1); beyond df 30 the normal 1.96 is close enough.
var tTable = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
}

func tQuantile(df int) float64 {
	if df <= 0 {
		return 0
	}
	if v, ok := tTable[df]; ok {
		return v
	}
	if df > 30 {
		return 1.96
	}
	// Largest tabulated df below the requested one (conservative).
	chosen := 1
	for d := range tTable {
		if d <= df && d > chosen {
			chosen = d
		}
	}
	return tTable[chosen]
}

// Summarize computes the trial summary. Fewer than two values yield a
// zero CI.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = tQuantile(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	return s
}

// RelCI returns the CI as a fraction of the mean (0 when mean is 0).
func (s Summary) RelCI() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.CI95 / s.Mean
}
