package metrics

import (
	"sync"
	"testing"
)

func TestStripedUint64Basic(t *testing.T) {
	var c StripedUint64
	c.SetShards(4)
	c.AddShard(0, 1)
	c.AddShard(3, 2)
	c.AddShard(-1, 5) // folds onto shard 0
	c.AddShard(99, 7) // out of range folds onto shard 0
	c.Add(1)
	if got := c.Load(); got != 16 {
		t.Fatalf("Load = %d, want 16", got)
	}
}

func TestStripedUint64ZeroValue(t *testing.T) {
	var c StripedUint64
	c.Add(3)
	c.AddShard(2, 4)
	if got := c.Load(); got != 7 {
		t.Fatalf("zero-value Load = %d, want 7", got)
	}
	// SetShards after zero-value use keeps the fallback's total.
	c.SetShards(2)
	c.AddShard(1, 1)
	if got := c.Load(); got != 8 {
		t.Fatalf("Load after SetShards = %d, want 8", got)
	}
}

func TestStripedUint64Concurrent(t *testing.T) {
	var c StripedUint64
	const shards, perShard = 8, 10000
	c.SetShards(shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				c.AddShard(s, 1)
			}
		}(s)
	}
	wg.Wait()
	if got := c.Load(); got != shards*perShard {
		t.Fatalf("Load = %d, want %d", got, shards*perShard)
	}
}
