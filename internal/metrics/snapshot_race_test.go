package metrics

// Snapshot-consistency tests, meant to run under -race: the /statsz and
// /metrics export paths read StripedUint64 and ShardedHistogram while every
// executor is still writing, and a torn read there would surface as
// impossible statistics (a mean no sample ever had, a count ahead of its
// sum). Writers record a CONSTANT value so any interleaving bug becomes an
// exact-arithmetic failure rather than a tolerance judgment.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStripedUint64SnapshotUnderWriters(t *testing.T) {
	const (
		writers = 8
		perW    = 50_000
	)
	var c StripedUint64
	c.SetShards(writers)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var lastSeen atomic.Uint64

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var prev uint64
		for {
			got := c.Load()
			if got < prev {
				t.Errorf("Load went backwards: %d after %d", got, prev)
				return
			}
			prev = got
			lastSeen.Store(got)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := c.Load(); got != writers*perW {
		t.Fatalf("final count %d, want %d", got, writers*perW)
	}
}

func TestShardedHistogramSnapshotConsistencyUnderWriters(t *testing.T) {
	const (
		writers = 8
		perW    = 20_000
		value   = 100 // constant: every consistent snapshot has Mean exactly 100
	)
	var h ShardedHistogram
	h.SetShards(writers)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			snap := h.Snapshot()
			if snap.Count > 0 {
				if snap.Mean != value {
					t.Errorf("torn snapshot: count=%d mean=%v (every sample is %d)",
						snap.Count, snap.Mean, value)
					return
				}
				if snap.Min != value || snap.Max != value {
					t.Errorf("torn snapshot: min=%d max=%d", snap.Min, snap.Max)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.RecordShard(w, value)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	final := h.Snapshot()
	if final.Count != writers*perW {
		t.Fatalf("final count %d, want %d", final.Count, writers*perW)
	}
	if final.Mean != value {
		t.Fatalf("final mean %v, want %d", final.Mean, value)
	}
}

// TestHistogramSnapshotNotTorn drives one Histogram directly (the fallback
// path every out-of-range RecordShard takes) with concurrent writers and
// asserts Snapshot's single-lock view never interleaves count and sum from
// different moments.
func TestHistogramSnapshotNotTorn(t *testing.T) {
	const (
		writers = 4
		perW    = 30_000
		value   = 7 // small enough to live in an exact (sub-resolution) bucket
	)
	var h Histogram

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			snap := h.Snapshot()
			if snap.Count > 0 {
				if snap.Mean != value {
					t.Errorf("torn snapshot: count=%d mean=%v", snap.Count, snap.Mean)
					return
				}
				// Exact bucket: the percentile of a constant stream IS the value.
				if snap.P50 != value || snap.P99 != value || snap.P999 != value {
					t.Errorf("torn percentiles: p50=%d p99=%d p999=%d", snap.P50, snap.P99, snap.P999)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Record(value)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := h.Count(); got != writers*perW {
		t.Fatalf("final count %d, want %d", got, writers*perW)
	}
}
