package metrics

// LoadPoint is one point of a load sweep: offered load (requests/second)
// and the measured tail latency (nanoseconds).
type LoadPoint struct {
	LoadRPS float64
	P99NS   float64
	// MeasuredRPS is the achieved goodput; at saturation it falls below
	// LoadRPS.
	MeasuredRPS float64
}

// ThroughputUnderSLO returns the maximum load at which the p99 latency
// stays within sloNS, interpolating linearly between the last passing and
// first failing points of the sweep (which must be sorted by load). It
// returns 0 if even the lightest load misses the SLO.
func ThroughputUnderSLO(points []LoadPoint, sloNS float64) float64 {
	best := 0.0
	for i, pt := range points {
		if pt.P99NS <= sloNS {
			best = pt.LoadRPS
			continue
		}
		if i == 0 {
			return 0
		}
		prev := points[i-1]
		if prev.P99NS > sloNS {
			return best
		}
		// Interpolate the crossing between prev (passing) and pt (failing).
		frac := (sloNS - prev.P99NS) / (pt.P99NS - prev.P99NS)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return prev.LoadRPS + frac*(pt.LoadRPS-prev.LoadRPS)
	}
	return best
}
