package topo

import (
	"testing"
	"testing/quick"
)

func TestPresetsValid(t *testing.T) {
	for _, cfg := range []Config{
		QFlex32(), FPGA2(), Scale(16), Scale(32), Scale(64), Scale(128), Scale(256), DualSocket256(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestQFlex32Geometry(t *testing.T) {
	m := MustMachine(QFlex32())
	if m.Cfg.TotalCores() != 32 {
		t.Fatalf("cores = %d, want 32", m.Cfg.TotalCores())
	}
	// Core 0 at (0,0), core 7 at (7,0): 7 hops.
	if d := m.HopDist(0, 7); d != 7 {
		t.Errorf("HopDist(0,7) = %d, want 7", d)
	}
	// Core 0 to core 31 at (7,3): 10 hops.
	if d := m.HopDist(0, 31); d != 10 {
		t.Errorf("HopDist(0,31) = %d, want 10", d)
	}
	if d := m.HopDist(5, 5); d != 0 {
		t.Errorf("HopDist(5,5) = %d, want 0", d)
	}
}

func TestHopDistSymmetric(t *testing.T) {
	m := MustMachine(QFlex32())
	f := func(a, b uint8) bool {
		ca := CoreID(int(a) % 32)
		cb := CoreID(int(b) % 32)
		return m.HopDist(ca, cb) == m.HopDist(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistTriangleInequality(t *testing.T) {
	m := MustMachine(Scale(64))
	f := func(a, b, c uint8) bool {
		x := CoreID(int(a) % 64)
		y := CoreID(int(b) % 64)
		z := CoreID(int(c) % 64)
		return m.HopDist(x, z) <= m.HopDist(x, y)+m.HopDist(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetLatencySameCoreZero(t *testing.T) {
	m := MustMachine(QFlex32())
	if l := m.NetLatency(3, 3, 64); l != 0 {
		t.Fatalf("same-core latency = %d, want 0", l)
	}
}

func TestNetLatencyBlockSerialization(t *testing.T) {
	m := MustMachine(QFlex32())
	// 1 hop, 64B payload on 16B links: 3 cycles hop + 3 extra flit cycles.
	if l := m.NetLatency(0, 1, 64); l != 6 {
		t.Fatalf("1-hop block latency = %d, want 6", l)
	}
	// Control message (<=16B): hop cost only.
	if l := m.NetLatency(0, 1, 8); l != 3 {
		t.Fatalf("1-hop control latency = %d, want 3", l)
	}
}

func TestInterSocketLatency(t *testing.T) {
	m := MustMachine(DualSocket256())
	a := CoreID(0)   // socket 0
	b := CoreID(128) // socket 1, local (0,0)
	if m.Socket(a) != 0 || m.Socket(b) != 1 {
		t.Fatalf("socket assignment wrong: %d %d", m.Socket(a), m.Socket(b))
	}
	lat := m.NetLatency(a, b, 8)
	want := m.Cfg.NSToCycles(260) // both at the die edge: no mesh hops
	if lat != want {
		t.Fatalf("cross-socket latency = %d, want %d", lat, want)
	}
	// Within-socket must not pay the socket link.
	if l := m.NetLatency(0, 1, 8); l >= want {
		t.Fatalf("intra-socket latency %d unexpectedly >= inter-socket %d", l, want)
	}
}

func TestTimeConversion(t *testing.T) {
	c := QFlex32()
	if got := c.NSToCycles(260); got != 1040 {
		t.Fatalf("260ns = %d cycles, want 1040", got)
	}
	if got := c.CyclesToNS(8); got != 2.0 {
		t.Fatalf("8 cycles = %vns, want 2", got)
	}
}

func TestInstrScaling(t *testing.T) {
	sim := QFlex32()
	fpga := FPGA2()
	if sim.Instr(10) != 10 {
		t.Fatalf("sim Instr(10) = %d, want 10", sim.Instr(10))
	}
	if fpga.Instr(10) <= sim.Instr(10) {
		t.Fatalf("FPGA instruction cost %d should exceed simulator %d",
			fpga.Instr(10), sim.Instr(10))
	}
}

func TestHomeTileInRange(t *testing.T) {
	m := MustMachine(DualSocket256())
	f := func(addr uint64, sock bool) bool {
		s := 0
		if sock {
			s = 1
		}
		tile := m.HomeTile(s, addr)
		lo := TileID(s * 128)
		hi := TileID((s + 1) * 128)
		return tile >= lo && tile < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNearestMC(t *testing.T) {
	m := MustMachine(QFlex32())
	// Corner core is at an MC.
	if d := m.NearestMC(0); d != 0 {
		t.Errorf("NearestMC(0) = %d, want 0", d)
	}
	// Central core (3,1) -> min over corners of 8x4: (0,0)=4 (3,0)? corners are
	// (0,0),(7,0),(0,3),(7,3): dist = 4, 5, 6, 7 -> 4.
	core := CoreID(1*8 + 3)
	if d := m.NearestMC(core); d != 4 {
		t.Errorf("NearestMC(center) = %d, want 4", d)
	}
}

func TestMaxHops(t *testing.T) {
	m := MustMachine(QFlex32())
	all := make([]CoreID, 32)
	for i := range all {
		all[i] = CoreID(i)
	}
	if d := m.MaxHops(0, all); d != 10 {
		t.Fatalf("MaxHops(0, all) = %d, want 10", d)
	}
	if d := m.MaxHops(0, nil); d != 0 {
		t.Fatalf("MaxHops(0, nil) = %d, want 0", d)
	}
}

func TestScaleMeshGrowsMaxDistance(t *testing.T) {
	prev := -1
	for _, n := range []int{16, 32, 64, 128, 256} {
		m := MustMachine(Scale(n))
		all := make([]CoreID, n)
		for i := range all {
			all[i] = CoreID(i)
		}
		d := m.MaxHops(0, all)
		if d <= prev {
			t.Fatalf("max distance did not grow: %d cores -> %d hops (prev %d)", n, d, prev)
		}
		prev = d
	}
}

func TestValidateRejectsBadMesh(t *testing.T) {
	c := QFlex32()
	c.MeshX = 5
	if err := c.Validate(); err == nil {
		t.Fatal("expected mesh mismatch error")
	}
}
