// Package topo models the physical organization of the simulated machine:
// cores/tiles laid out on per-socket 2D meshes, memory controllers at mesh
// corners, and the network latencies between them. It mirrors the system
// parameters of Table 2 in the paper (32-core, 4 GHz, 8x4 mesh, 16 B links,
// 3 cycles/hop, 4 memory controllers) and the scaling configurations of
// §6.3 (single-socket 16-256 cores, dual-socket 128+128 with 260 ns
// inter-socket latency, following AMD Zen5 Turin).
package topo

import (
	"fmt"

	"jord/internal/sim/engine"
)

// CoreID identifies a core; cores are numbered socket-major, then
// row-major within the socket's mesh.
type CoreID int

// TileID identifies a mesh tile. In this model every core occupies one
// tile (core i on tile i), and each tile carries one LLC slice.
type TileID int

// Config describes a machine. All latencies are in core clock cycles.
type Config struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	MeshX, MeshY   int // per-socket mesh dimensions; MeshX*MeshY == CoresPerSocket

	FreqGHz float64 // core clock; Table 2: 4 GHz

	HopCycles       engine.Time // per mesh hop; Table 2: 3 cycles
	LinkBytes       int         // link width; Table 2: 16 B
	InterSocketNS   float64     // socket-to-socket latency; §5: 260 ns
	MemControllers  int         // per socket; Table 2: 4 MCs
	CacheBlockBytes int         // 64 B

	// Core model. InstrCycleFactor scales the cost of instruction
	// execution (not SRAM/wire latencies): 1.0 for the aggressive
	// cycle-accurate simulator pipeline, >1 for the FPGA RTL model whose
	// IPC is lower (§6.2: "operations involving instruction execution
	// exhibit a lower IPC in the RTL model").
	InstrCycleFactor float64

	// Cache hierarchy latencies (Table 2).
	L1Cycles   engine.Time // 2-cycle L1
	LLCCycles  engine.Time // 6-cycle LLC slice
	DRAMCycles engine.Time // DRAM array access once at the controller

	// DRAMFastFactor scales DRAM latency relative to the core clock; the
	// FPGA prototype's DRAM runs at a relatively higher frequency than
	// its cores (paper footnote 2), making DRAM cheaper in core cycles.
	DRAMFastFactor float64
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.Sockets < 1 || c.CoresPerSocket < 1 {
		return fmt.Errorf("topo: %s: need at least one socket and core", c.Name)
	}
	if c.MeshX*c.MeshY != c.CoresPerSocket {
		return fmt.Errorf("topo: %s: mesh %dx%d != %d cores/socket",
			c.Name, c.MeshX, c.MeshY, c.CoresPerSocket)
	}
	if c.FreqGHz <= 0 || c.InstrCycleFactor <= 0 || c.DRAMFastFactor <= 0 {
		return fmt.Errorf("topo: %s: non-positive scale factor", c.Name)
	}
	if c.LinkBytes <= 0 || c.CacheBlockBytes <= 0 {
		return fmt.Errorf("topo: %s: non-positive link/block size", c.Name)
	}
	return nil
}

// TotalCores returns the machine-wide core count.
func (c *Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// CyclesPerNS returns clock cycles per nanosecond.
func (c *Config) CyclesPerNS() float64 { return c.FreqGHz }

// NSToCycles converts nanoseconds to (rounded) cycles.
func (c *Config) NSToCycles(ns float64) engine.Time {
	return engine.Time(ns*c.FreqGHz + 0.5)
}

// CyclesToNS converts cycles to nanoseconds.
func (c *Config) CyclesToNS(t engine.Time) float64 {
	return float64(t) / c.FreqGHz
}

// Instr returns the cost in cycles of executing n "simple" instructions,
// scaled by the platform's IPC model.
func (c *Config) Instr(n int) engine.Time {
	return engine.Time(float64(n)*c.InstrCycleFactor + 0.5)
}

// Machine is a validated Config with derived geometry.
type Machine struct {
	Cfg Config
}

// NewMachine validates cfg and returns the machine model.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Cfg: cfg}, nil
}

// MustMachine is NewMachine for known-good presets.
func MustMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Socket returns the socket that core c belongs to.
func (m *Machine) Socket(c CoreID) int {
	return int(c) / m.Cfg.CoresPerSocket
}

// coord returns the (x, y) mesh coordinate of a core within its socket.
func (m *Machine) coord(c CoreID) (x, y int) {
	local := int(c) % m.Cfg.CoresPerSocket
	return local % m.Cfg.MeshX, local / m.Cfg.MeshX
}

// HopDist returns the Manhattan hop distance between two cores' tiles. For
// cores on different sockets it returns the hops to each socket's I/O edge
// (die corner nearest the socket link, modelled at tile (0,0)).
func (m *Machine) HopDist(a, b CoreID) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	if m.Socket(a) == m.Socket(b) {
		return abs(ax-bx) + abs(ay-by)
	}
	// Each side traverses to its die edge at (0,0).
	return ax + ay + bx + by
}

// NetLatency returns the latency for a message of the given payload bytes
// from core a's tile to core b's tile: per-hop wire latency, flit
// serialization on 16 B links, and the inter-socket link when crossing
// sockets.
func (m *Machine) NetLatency(a, b CoreID, bytes int) engine.Time {
	if a == b {
		return 0
	}
	hops := m.HopDist(a, b)
	lat := engine.Time(hops) * m.Cfg.HopCycles
	if bytes > m.Cfg.LinkBytes {
		flits := (bytes + m.Cfg.LinkBytes - 1) / m.Cfg.LinkBytes
		lat += engine.Time(flits - 1) // pipelined: one extra cycle per extra flit
	}
	if m.Socket(a) != m.Socket(b) {
		lat += m.Cfg.NSToCycles(m.Cfg.InterSocketNS)
	}
	return lat
}

// HomeTile returns the tile whose LLC slice is home for a cache-block
// address (static block-interleaved hashing, socket-local).
func (m *Machine) HomeTile(socket int, blockAddr uint64) TileID {
	slice := int(blockAddr % uint64(m.Cfg.CoresPerSocket))
	return TileID(socket*m.Cfg.CoresPerSocket + slice)
}

// TileCore returns the core co-located with a tile (1:1 in this model).
func (m *Machine) TileCore(t TileID) CoreID { return CoreID(t) }

// NearestMC returns the hop distance from a core to its socket's nearest
// memory controller. MCs sit at the four mesh corners (MemControllers is
// capped at 4 in this placement; fewer MCs occupy corners in order).
func (m *Machine) NearestMC(c CoreID) int {
	x, y := m.coord(c)
	X, Y := m.Cfg.MeshX-1, m.Cfg.MeshY-1
	corners := [4][2]int{{0, 0}, {X, 0}, {0, Y}, {X, Y}}
	n := m.Cfg.MemControllers
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	best := 1 << 30
	for _, k := range corners[:n] {
		d := abs(x-k[0]) + abs(y-k[1])
		if d < best {
			best = d
		}
	}
	return best
}

// MaxHops returns the largest hop distance from core c to any core in the
// given set (used for "farthest sharer" shootdown latency).
func (m *Machine) MaxHops(c CoreID, others []CoreID) int {
	max := 0
	for _, o := range others {
		if d := m.HopDist(c, o); d > max {
			max = d
		}
	}
	return max
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
