package topo

// base returns the Table 2 parameter set shared by all cycle-accurate
// simulator configurations.
func base() Config {
	return Config{
		FreqGHz:          4.0,
		HopCycles:        3,
		LinkBytes:        16,
		InterSocketNS:    260,
		MemControllers:   4,
		CacheBlockBytes:  64,
		InstrCycleFactor: 1.0,
		L1Cycles:         2,
		LLCCycles:        6,
		DRAMCycles:       260, // ~65 ns array access at 4 GHz
		DRAMFastFactor:   1.0,
	}
}

// QFlex32 is the paper's primary evaluation machine: 32 cores at 4 GHz on
// an 8x4 mesh (Table 2).
func QFlex32() Config {
	c := base()
	c.Name = "qflex-32"
	c.Sockets = 1
	c.CoresPerSocket = 32
	c.MeshX, c.MeshY = 8, 4
	return c
}

// FPGA2 models the OpenXiangShan FPGA prototype: two cores, lower IPC on
// instruction execution, identical SRAM latencies, relatively fast DRAM
// (paper §5 and footnote 2).
func FPGA2() Config {
	c := base()
	c.Name = "fpga-xiangshan-2"
	c.Sockets = 1
	c.CoresPerSocket = 2
	c.MeshX, c.MeshY = 2, 1
	c.InstrCycleFactor = 2.4 // RTL pipeline: more control/structural hazards
	c.DRAMFastFactor = 0.5   // DRAM clocked high relative to FPGA cores
	return c
}

// Scale returns the single-socket scaling configurations of §6.3:
// 16, 64, 128, or 256 cores on near-square meshes.
func Scale(cores int) Config {
	c := base()
	c.Sockets = 1
	c.CoresPerSocket = cores
	switch cores {
	case 16:
		c.MeshX, c.MeshY = 4, 4
	case 32:
		c.MeshX, c.MeshY = 8, 4
	case 64:
		c.MeshX, c.MeshY = 8, 8
	case 128:
		c.MeshX, c.MeshY = 16, 8
	case 256:
		c.MeshX, c.MeshY = 16, 16
	default:
		// Fall back to a single row; Validate will reject impossible sizes.
		c.MeshX, c.MeshY = cores, 1
	}
	c.Name = "scale-" + itoa(cores)
	return c
}

// DualSocket256 is the dual-socket system of §6.3: 128 cores per socket,
// 260 ns inter-socket latency.
func DualSocket256() Config {
	c := base()
	c.Name = "dual-socket-256"
	c.Sockets = 2
	c.CoresPerSocket = 128
	c.MeshX, c.MeshY = 16, 8
	return c
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
