package engine

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run(MaxTime)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestFIFOTiebreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run(MaxTime)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-timestamp events not FIFO: %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(100, func() { fired++ })
	n := e.Run(50)
	if n != 1 || fired != 1 {
		t.Fatalf("n=%d fired=%d, want 1,1", n, fired)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want 50", e.Now())
	}
	e.Run(MaxTime)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var trace []Time
	e.Schedule(10, func() {
		trace = append(trace, e.Now())
		e.Schedule(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run(MaxTime)
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run(MaxTime)
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(MaxTime)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestProcDelay(t *testing.T) {
	e := New()
	var marks []Time
	e.Spawn("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Delay(100)
		marks = append(marks, p.Now())
		p.Delay(50)
		marks = append(marks, p.Now())
	})
	e.Run(MaxTime)
	want := []Time{0, 100, 150}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcParkUnpark(t *testing.T) {
	e := New()
	var order []string
	var consumer *Proc
	consumer = e.Spawn("consumer", func(p *Proc) {
		order = append(order, "park")
		p.Park()
		order = append(order, "resumed")
	})
	e.Spawn("producer", func(p *Proc) {
		p.Delay(500)
		order = append(order, "wake")
		consumer.Unpark()
	})
	e.Run(MaxTime)
	want := []string{"park", "wake", "resumed"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if !consumer.Done() {
		t.Fatal("consumer not done")
	}
}

func TestUnparkToken(t *testing.T) {
	// An Unpark delivered while the proc is runnable must be consumed by
	// the next Park (no lost wakeup).
	e := New()
	reachedEnd := false
	p := e.Spawn("p", func(p *Proc) {
		p.Delay(10)
		p.Park() // should consume the token sent at t=5
		reachedEnd = true
	})
	e.Schedule(5, func() { p.Unpark() })
	e.Run(MaxTime)
	if !reachedEnd {
		t.Fatal("pending unpark token was lost")
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := New()
	var q WaitQueue
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			order = append(order, i)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Delay(10)
		for q.WakeOne() {
			p.Delay(10)
		}
	})
	e.Run(MaxTime)
	if len(order) != 3 {
		t.Fatalf("woke %d, want 3", len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestWaitQueueWakeAll(t *testing.T) {
	e := New()
	var q WaitQueue
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	e.Schedule(10, func() {
		if n := q.WakeAll(); n != 5 {
			t.Errorf("WakeAll = %d, want 5", n)
		}
	})
	e.Run(MaxTime)
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
	if q.Len() != 0 {
		t.Fatalf("queue len = %d, want 0", q.Len())
	}
}

func TestShutdownKillsParkedProcs(t *testing.T) {
	e := New()
	cleanup := false
	e.Spawn("stuck", func(p *Proc) {
		defer func() { cleanup = true }()
		p.Park() // never unparked
		t.Error("parked proc ran past Park after shutdown")
	})
	e.Run(MaxTime)
	e.Shutdown()
	if !cleanup {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestShutdownKillsSleepingProcs(t *testing.T) {
	e := New()
	e.Spawn("sleeper", func(p *Proc) {
		p.Delay(1000)
		t.Error("sleeper ran after shutdown")
	})
	e.Run(10) // sleeper is mid-Delay
	e.Shutdown()
}

func TestProcYieldInterleaving(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Yield()
		order = append(order, "b2")
	})
	e.Run(MaxTime)
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []Time {
		e := New()
		rng := rand.New(rand.NewPCG(seed, 17))
		var stamps []Time
		var q WaitQueue
		for i := 0; i < 20; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Delay(Time(rng.Int64N(100)))
					stamps = append(stamps, p.Now())
					if rng.IntN(3) == 0 {
						q.Wait(p)
					}
					q.WakeOne()
				}
			})
		}
		e.Run(MaxTime)
		e.Shutdown()
		return stamps
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []Time
		var maxT Time
		for _, d := range delays {
			d := Time(d)
			if d > maxT {
				maxT = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run(MaxTime)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == maxT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of Delays accumulates exactly.
func TestQuickDelayAccumulation(t *testing.T) {
	f := func(delays []uint8) bool {
		e := New()
		var total Time
		ok := true
		e.Spawn("p", func(p *Proc) {
			for _, d := range delays {
				total += Time(d)
				p.Delay(Time(d))
				if p.Now() != total {
					ok = false
				}
			}
		})
		e.Run(MaxTime)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
