package engine

// WaitQueue is a FIFO queue of parked Procs, the engine-level analogue of a
// condition variable. Procs call Wait to sleep on the queue; other code
// calls WakeOne/WakeAll to make them runnable again. Because the engine is
// single-threaded there is no lost-wakeup race: a waker always sees either
// a waiting proc or nothing to wake.
type WaitQueue struct {
	waiters []*Proc
}

// Wait parks p on the queue until a wakeup.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.Park()
}

// WakeOne unparks the longest-waiting proc, if any, and reports whether a
// proc was woken.
func (q *WaitQueue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	p.Unpark()
	return true
}

// WakeAll unparks every waiting proc and returns how many were woken.
func (q *WaitQueue) WakeAll() int {
	n := len(q.waiters)
	for _, p := range q.waiters {
		p.Unpark()
	}
	q.waiters = q.waiters[:0]
	return n
}

// Len returns the number of procs currently waiting.
func (q *WaitQueue) Len() int { return len(q.waiters) }
