// Package engine implements a deterministic discrete-event simulation core.
//
// The engine advances a virtual clock measured in CPU cycles and executes
// events in (time, insertion-order) order, so a simulation with a fixed seed
// always produces bit-identical results. On top of raw events it provides
// cooperative processes (Proc): goroutine-backed activities that can sleep in
// virtual time, park waiting for a signal, and be resumed by other
// processes. Procs are the building block for cores, orchestrators,
// executors, and function continuations in the Jord model.
//
// The engine itself is strictly single-threaded: exactly one goroutine (the
// one calling Run) or exactly one Proc goroutine is runnable at any instant,
// and handoffs are synchronous. This gives deterministic interleaving
// without locks.
package engine

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in clock cycles.
type Time int64

// MaxTime is the largest representable virtual time; Run(MaxTime) runs until
// the event queue drains.
const MaxTime Time = math.MaxInt64

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (FIFO within a timestamp).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; create one with New.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	procs   []*Proc
	running bool
	stopped bool
	// nEvents counts executed events, for diagnostics and budget guards.
	nEvents uint64
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nEvents }

// Schedule runs fn after delay cycles of virtual time. A negative delay is
// an error in the caller; it panics to surface the bug immediately.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %d", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at, which must not be in the
// past.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule in the past: %d < %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// Run executes events until the queue is empty or the next event is later
// than until. The clock is left at the time of the last executed event (or
// at until if the queue drained earlier than until and until != MaxTime).
// It returns the number of events executed during this call.
func (e *Engine) Run(until Time) uint64 {
	if e.running {
		panic("engine: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	var n uint64
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		n++
		e.nEvents++
	}
	if until != MaxTime && e.now < until {
		e.now = until
	}
	return n
}

// Stop makes Run return after the current event completes. It is intended
// for use from within event callbacks (e.g., "measurement window over").
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Shutdown kills every live Proc so that their goroutines exit. It must be
// called when the engine owner is done with a simulation that still has
// parked or sleeping processes; otherwise their goroutines would leak.
// After Shutdown the engine must not be used.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		p.kill()
	}
	e.procs = nil
}
