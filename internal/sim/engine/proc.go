package engine

import "fmt"

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procSleeping // waiting for a scheduled wakeup
	procParked   // waiting for an explicit Unpark
	procDone
	procKilled
)

// errKilled is the panic value used to unwind a killed Proc's goroutine.
type killedError struct{ name string }

func (k killedError) Error() string { return "engine: proc killed: " + k.name }

// Proc is a cooperative simulation process backed by a goroutine. Exactly
// one Proc (or the engine loop) executes at a time; control transfers are
// synchronous channel handoffs, so all Proc code can treat shared
// simulation state as if it were single-threaded.
//
// Within its body a Proc may:
//   - Delay(d): advance virtual time by d cycles.
//   - Park(): block until another Proc or event calls Unpark.
//   - Yield(): reschedule itself at the current time behind already-queued
//     events (a cooperative scheduling point).
//
// All three panic with a killedError if the engine shuts down, which the
// Proc wrapper recovers, so bodies need no kill handling of their own.
type Proc struct {
	Name string

	eng    *Engine
	resume chan struct{}
	yield  chan struct{}
	state  procState
	// wakePending implements one-token unpark semantics: an Unpark that
	// arrives while the proc is running is consumed by its next Park.
	wakePending bool
}

// Spawn creates a Proc executing body and schedules it to start at the
// current virtual time.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		Name:   name,
		eng:    e,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		state:  procNew,
	}
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			r := recover()
			if _, killed := r.(killedError); killed {
				p.state = procKilled
				p.yield <- struct{}{}
				return
			}
			p.state = procDone
			if r != nil {
				// Re-panicking here would crash an unrelated goroutine;
				// instead surface the failure loudly and synchronously.
				p.yield <- struct{}{}
				panic(fmt.Sprintf("engine: proc %q panicked: %v", p.Name, r))
			}
			p.yield <- struct{}{}
		}()
		<-p.resume
		if p.state == procKilled {
			panic(killedError{p.Name})
		}
		p.state = procRunning
		body(p)
	}()
	p.state = procRunnable
	e.Schedule(0, p.step)
	return p
}

// step transfers control to the proc goroutine and waits for it to yield
// back. It is always invoked from engine (event) context.
func (p *Proc) step() {
	switch p.state {
	case procDone, procKilled:
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// switchOut hands control back to the engine and blocks until resumed.
// Must be called from the proc's own goroutine.
func (p *Proc) switchOut() {
	p.yield <- struct{}{}
	<-p.resume
	if p.state == procKilled {
		panic(killedError{p.Name})
	}
	p.state = procRunning
}

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Delay advances virtual time by d cycles from the proc's perspective:
// the proc suspends and resumes d cycles later. Delay(0) is a no-op (it
// does not yield).
func (p *Proc) Delay(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("engine: proc %q negative delay %d", p.Name, d))
	}
	if d == 0 {
		return
	}
	p.state = procSleeping
	p.eng.Schedule(d, func() {
		p.state = procRunnable
		p.step()
	})
	p.switchOut()
}

// Yield reschedules the proc at the current virtual time, behind events
// already queued for this instant. It is a cooperative scheduling point
// that lets same-timestamp work interleave deterministically.
func (p *Proc) Yield() {
	p.state = procSleeping
	p.eng.Schedule(0, func() {
		p.state = procRunnable
		p.step()
	})
	p.switchOut()
}

// Park blocks the proc until Unpark is called on it. If an Unpark token is
// already pending, Park consumes it and returns immediately without
// yielding.
func (p *Proc) Park() {
	if p.wakePending {
		p.wakePending = false
		return
	}
	p.state = procParked
	p.switchOut()
}

// Unpark makes a parked proc runnable at the current virtual time. If the
// proc is not parked, the wakeup is remembered and consumed by its next
// Park (one-token semantics). Unpark must be called from engine or another
// proc's context, never from the target proc itself.
func (p *Proc) Unpark() {
	switch p.state {
	case procParked:
		p.state = procRunnable
		p.eng.Schedule(0, p.step)
	case procDone, procKilled:
		// Late wakeups for finished procs are harmless.
	default:
		p.wakePending = true
	}
}

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.state == procDone || p.state == procKilled }

// kill unwinds the proc goroutine if it is still live.
func (p *Proc) kill() {
	switch p.state {
	case procDone, procKilled, procNew:
		p.state = procKilled
		return
	}
	p.state = procKilled
	p.resume <- struct{}{}
	<-p.yield
}
