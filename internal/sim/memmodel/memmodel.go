// Package memmodel provides the cache/coherence timing model: the latency
// of loads, stores, and block transfers as a function of where the data
// lives (L1, a remote L1, an LLC slice, DRAM) and where the requesting core
// sits on the mesh. It encodes the directory-MESI message flows of Table 2
// as latency formulas; the actual per-VTE sharer tracking lives in
// package vlb, which calls back into this model for message costs.
package memmodel

import (
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// ctrlBytes is the payload size of a coherence request/ack message.
const ctrlBytes = 8

// Model computes memory access latencies for one machine.
type Model struct {
	M *topo.Machine
}

// New returns a timing model over machine m.
func New(m *topo.Machine) *Model { return &Model{M: m} }

// blockBytes returns the cache block size.
func (mm *Model) blockBytes() int { return mm.M.Cfg.CacheBlockBytes }

// L1Hit is the cost of a load/store hitting the local L1D.
func (mm *Model) L1Hit() engine.Time { return mm.M.Cfg.L1Cycles }

// homeCore returns the core co-located with the home LLC slice of addr for
// the socket of core c.
func (mm *Model) homeCore(c topo.CoreID, blockAddr uint64) topo.CoreID {
	return mm.M.TileCore(mm.M.HomeTile(mm.M.Socket(c), blockAddr))
}

// LLCHit is the cost of an L1 miss served by the home LLC slice: L1 miss
// detection, request to home, LLC array access, data response.
func (mm *Model) LLCHit(c topo.CoreID, blockAddr uint64) engine.Time {
	home := mm.homeCore(c, blockAddr)
	return mm.M.Cfg.L1Cycles + // miss determination
		mm.M.NetLatency(c, home, ctrlBytes) +
		mm.M.Cfg.LLCCycles +
		mm.M.NetLatency(home, c, mm.blockBytes())
}

// RemoteOwnerHit is the cost of an L1 miss whose block is dirty in another
// core's cache: request to home (directory), forward to owner, cache-to-
// cache data response.
func (mm *Model) RemoteOwnerHit(c, owner topo.CoreID, blockAddr uint64) engine.Time {
	home := mm.homeCore(c, blockAddr)
	return mm.M.Cfg.L1Cycles +
		mm.M.NetLatency(c, home, ctrlBytes) +
		mm.M.Cfg.LLCCycles + // directory lookup
		mm.M.NetLatency(home, owner, ctrlBytes) +
		mm.M.Cfg.L1Cycles + // owner L1 probe
		mm.M.NetLatency(owner, c, mm.blockBytes())
}

// DRAMAccess is the cost of a miss that goes to memory: home slice lookup,
// hop to the nearest memory controller, DRAM array access, data return.
func (mm *Model) DRAMAccess(c topo.CoreID, blockAddr uint64) engine.Time {
	home := mm.homeCore(c, blockAddr)
	mcHops := mm.M.NearestMC(home)
	dram := engine.Time(float64(mm.M.Cfg.DRAMCycles) * mm.M.Cfg.DRAMFastFactor)
	return mm.LLCHit(c, blockAddr) +
		engine.Time(mcHops)*mm.M.Cfg.HopCycles*2 +
		dram
}

// UpgradeWrite is the cost of a store to a block held Shared by others:
// upgrade request to home, parallel invalidations, acks gated by the
// farthest sharer.
func (mm *Model) UpgradeWrite(c topo.CoreID, sharers []topo.CoreID, blockAddr uint64) engine.Time {
	home := mm.homeCore(c, blockAddr)
	lat := mm.M.Cfg.L1Cycles +
		mm.M.NetLatency(c, home, ctrlBytes) +
		mm.M.Cfg.LLCCycles
	// Invalidations fan out in parallel; completion depends on the
	// farthest sharer's ack (paper §6.3: shootdown latency depends on the
	// response time of the furthest core).
	var worst engine.Time
	for _, s := range sharers {
		if s == c {
			continue
		}
		rt := mm.M.NetLatency(home, s, ctrlBytes) +
			mm.M.Cfg.L1Cycles +
			mm.M.NetLatency(s, home, ctrlBytes)
		if rt > worst {
			worst = rt
		}
	}
	return lat + worst + mm.M.NetLatency(home, c, ctrlBytes)
}

// LinePing is the cost for core c to read one cache line that was last
// written by core owner — the cost of probing another core's queue length
// or popping from a producer's queue. Same core: an L1 hit.
func (mm *Model) LinePing(c, owner topo.CoreID, blockAddr uint64) engine.Time {
	if c == owner {
		return mm.L1Hit()
	}
	return mm.RemoteOwnerHit(c, owner, blockAddr)
}

// BlockStreamTransfer is the cost for dst to pull n dirty cache blocks
// last written by src (the ArgBuf handoff pattern). The first block pays
// the full cache-to-cache latency; subsequent blocks are pipelined behind
// it, each adding one block serialization interval on the narrowest link.
func (mm *Model) BlockStreamTransfer(src, dst topo.CoreID, n int, blockAddr uint64) engine.Time {
	if n <= 0 {
		return 0
	}
	first := mm.RemoteOwnerHit(dst, src, blockAddr)
	if n == 1 {
		return first
	}
	flitsPerBlock := (mm.blockBytes() + mm.M.Cfg.LinkBytes - 1) / mm.M.Cfg.LinkBytes
	return first + engine.Time((n-1)*flitsPerBlock)
}
