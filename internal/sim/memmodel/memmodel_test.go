package memmodel

import (
	"testing"
	"testing/quick"

	"jord/internal/sim/topo"
)

func qflex() *Model { return New(topo.MustMachine(topo.QFlex32())) }

func TestLatencyHierarchyOrdering(t *testing.T) {
	mm := qflex()
	c := topo.CoreID(5)
	addr := uint64(0x1234)
	l1 := mm.L1Hit()
	llc := mm.LLCHit(c, addr)
	dram := mm.DRAMAccess(c, addr)
	if !(l1 < llc && llc < dram) {
		t.Fatalf("hierarchy violated: L1=%d LLC=%d DRAM=%d", l1, llc, dram)
	}
}

func TestL1HitMatchesTable2(t *testing.T) {
	mm := qflex()
	if mm.L1Hit() != 2 {
		t.Fatalf("L1 = %d cycles, want 2 (Table 2)", mm.L1Hit())
	}
}

func TestRemoteOwnerCostsMoreThanLLCForFarOwner(t *testing.T) {
	mm := qflex()
	addr := uint64(0) // home = tile 0
	// Requester near home, owner far away: 3-leg beats 2-leg.
	llc := mm.LLCHit(1, addr)
	remote := mm.RemoteOwnerHit(1, 31, addr)
	if remote <= llc {
		t.Fatalf("remote owner %d should exceed LLC hit %d", remote, llc)
	}
}

func TestLinePingSameCoreIsL1(t *testing.T) {
	mm := qflex()
	if got := mm.LinePing(4, 4, 99); got != mm.L1Hit() {
		t.Fatalf("same-core ping = %d, want L1 %d", got, mm.L1Hit())
	}
}

func TestLinePingGrowsWithDistance(t *testing.T) {
	mm := qflex()
	addr := uint64(0)
	near := mm.LinePing(0, 1, addr)
	far := mm.LinePing(0, 31, addr)
	if far <= near {
		t.Fatalf("far ping %d should exceed near ping %d", far, near)
	}
}

func TestBlockStreamPipelining(t *testing.T) {
	mm := qflex()
	one := mm.BlockStreamTransfer(0, 31, 1, 0)
	fifteen := mm.BlockStreamTransfer(0, 31, 15, 0)
	if fifteen <= one {
		t.Fatalf("15 blocks %d should exceed 1 block %d", fifteen, one)
	}
	// Pipelined: far cheaper than 15 serial transfers.
	if fifteen >= 15*one {
		t.Fatalf("transfer not pipelined: 15 blocks = %d, 15x one = %d", fifteen, 15*one)
	}
	// Each extra block adds exactly one serialization interval (4 flits).
	if fifteen != one+14*4 {
		t.Fatalf("15-block transfer = %d, want %d", fifteen, one+14*4)
	}
	if mm.BlockStreamTransfer(0, 31, 0, 0) != 0 {
		t.Fatal("0-block transfer should be free")
	}
}

func TestUpgradeWriteFarthestSharerDominates(t *testing.T) {
	mm := qflex()
	addr := uint64(0)
	none := mm.UpgradeWrite(0, nil, addr)
	near := mm.UpgradeWrite(0, []topo.CoreID{1}, addr)
	far := mm.UpgradeWrite(0, []topo.CoreID{31}, addr)
	both := mm.UpgradeWrite(0, []topo.CoreID{1, 31}, addr)
	if !(none < near && near < far) {
		t.Fatalf("ordering violated: none=%d near=%d far=%d", none, near, far)
	}
	if both != far {
		t.Fatalf("parallel invalidation: both=%d should equal far=%d", both, far)
	}
	// Self in the sharer list contributes nothing.
	if self := mm.UpgradeWrite(0, []topo.CoreID{0}, addr); self != none {
		t.Fatalf("self-sharer should be free: %d vs %d", self, none)
	}
}

func TestCrossSocketTransferDominatesIntra(t *testing.T) {
	mm := New(topo.MustMachine(topo.DualSocket256()))
	addr := uint64(0)
	intra := mm.LinePing(0, 5, addr)
	inter := mm.LinePing(0, 200, addr)
	if inter <= intra+mm.M.Cfg.NSToCycles(260) {
		t.Fatalf("cross-socket ping %d should include the 260ns link (intra %d)", inter, intra)
	}
}

func TestQuickLatenciesPositiveAndFinite(t *testing.T) {
	mm := qflex()
	f := func(a, b uint8, addr uint64, n uint8) bool {
		ca := topo.CoreID(int(a) % 32)
		cb := topo.CoreID(int(b) % 32)
		if mm.LLCHit(ca, addr) <= 0 || mm.DRAMAccess(ca, addr) <= 0 {
			return false
		}
		if mm.LinePing(ca, cb, addr) <= 0 {
			return false
		}
		if int(n) > 0 && mm.BlockStreamTransfer(ca, cb, int(n), addr) <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFPGADRAMFasterRelative(t *testing.T) {
	sim := qflex()
	fpga := New(topo.MustMachine(topo.FPGA2()))
	// In core cycles, FPGA DRAM should be cheaper than simulator DRAM
	// (footnote 2: DRAM runs at a relatively higher frequency than cores).
	if fpga.DRAMAccess(0, 0) >= sim.DRAMAccess(0, 0) {
		t.Fatalf("FPGA DRAM %d should be < simulator DRAM %d in cycles",
			fpga.DRAMAccess(0, 0), sim.DRAMAccess(0, 0))
	}
}
