package core

import (
	"testing"

	"jord/internal/privlib"
)

// TestContextSwitchInterferenceIsMinimal verifies the co-design claim of
// §2.2: Jord extends virtual memory "with minimal modification to a CPU
// and OS without functional interference with existing workloads" — and
// conversely, co-located tenants barely disturb Jord, because a flushed
// VLB refills with ~2 ns plain-list walks. Even absurdly frequent
// context switches (every 20 us) must cost only a few percent.
func TestContextSwitchInterferenceIsMinimal(t *testing.T) {
	run := func(sliceNS float64, variant privlib.Variant) float64 {
		cfg := DefaultConfig()
		cfg.Seed = 17
		cfg.TimeSliceNS = sliceNS
		cfg.Variant = variant
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		child := s.MustRegister("child", func(c *Ctx) error { c.ExecNS(400); return nil })
		root := s.MustRegister("root", func(c *Ctx) error {
			c.ExecNS(800)
			return c.Call(child, 4)
		})
		res := s.RunLoad(LoadSpec{
			RPS: 1_000_000, Warmup: 200, Measure: 2000,
			Root: func() (FuncID, int) { return root, 8 },
		})
		return res.MeanServiceNS()
	}

	quiet := run(0, privlib.PlainList)
	noisy := run(20_000, privlib.PlainList)
	if noisy <= quiet {
		t.Logf("interference invisible at this precision: quiet=%.1f noisy=%.1f", quiet, noisy)
	}
	if noisy > quiet*1.05 {
		t.Fatalf("plain-list Jord degraded %.1f%% under 20us slicing, want < 5%%",
			(noisy/quiet-1)*100)
	}

	// The B-tree variant pays ~10x more per refill walk; its degradation
	// must exceed the plain list's (the Figure 13 mechanism seen through
	// the interference lens).
	btQuiet := run(0, privlib.BTree)
	btNoisy := run(20_000, privlib.BTree)
	plainDelta := noisy - quiet
	btDelta := btNoisy - btQuiet
	if btDelta < plainDelta {
		t.Fatalf("B-tree refill delta %.1f ns should exceed plain list's %.1f ns",
			btDelta, plainDelta)
	}
}

// TestInterferenceActuallyFlushes sanity-checks the knob: with slicing
// on, VLB invalidations and walks increase.
func TestInterferenceActuallyFlushes(t *testing.T) {
	walks := func(sliceNS float64) uint64 {
		cfg := DefaultConfig()
		cfg.Seed = 17
		cfg.TimeSliceNS = sliceNS
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn := s.MustRegister("f", func(c *Ctx) error { c.ExecNS(500); return nil })
		s.RunLoad(LoadSpec{
			RPS: 500_000, Warmup: 100, Measure: 1000,
			Root: func() (FuncID, int) { return fn, 4 },
		})
		return s.Lib.Sub.WalkCount
	}
	if noisy, quiet := walks(20_000), walks(0); noisy <= quiet {
		t.Fatalf("flushing did not increase walks: %d vs %d", noisy, quiet)
	}
}
