package core

import (
	"errors"
	"fmt"
	"testing"

	"jord/internal/mem/vmatable"
	"jord/internal/privlib"
)

func newSys(t *testing.T, mutate ...func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestTopologyAssignment(t *testing.T) {
	s := newSys(t)
	if len(s.Orchs) != 4 {
		t.Fatalf("orchestrators = %d, want 4 on 32 cores", len(s.Orchs))
	}
	if len(s.Execs) != 28 {
		t.Fatalf("executors = %d, want 28", len(s.Execs))
	}
	// Every executor belongs to exactly one group, and groups are balanced.
	seen := map[*Executor]bool{}
	for _, o := range s.Orchs {
		if len(o.group) != 7 {
			t.Errorf("group size = %d, want 7", len(o.group))
		}
		for _, e := range o.group {
			if seen[e] {
				t.Fatal("executor in two groups")
			}
			seen[e] = true
			if e.orch != o {
				t.Fatal("executor orch backlink wrong")
			}
		}
	}
	if len(seen) != 28 {
		t.Fatalf("grouped executors = %d, want 28", len(seen))
	}
}

func TestSingleInvocationCompletes(t *testing.T) {
	s := newSys(t)
	ran := false
	fn := s.MustRegister("noop", func(c *Ctx) error {
		ran = true
		c.ExecNS(1000)
		return nil
	})
	r := s.RunOnce(fn, 4)
	if r == nil || !r.done {
		t.Fatal("request did not complete")
	}
	if !ran {
		t.Fatal("function body did not run")
	}
	if r.status != nil {
		t.Fatalf("status = %v", r.status)
	}
	if r.Trace.Exec < s.nsToCycles(1000) {
		t.Fatalf("exec trace = %d cycles, want >= 4000", r.Trace.Exec)
	}
	if r.Trace.Isolation <= 0 || r.Trace.Dispatch <= 0 {
		t.Fatalf("missing overhead accounting: isol=%d disp=%d",
			r.Trace.Isolation, r.Trace.Dispatch)
	}
}

func TestInvocationCleansUpResources(t *testing.T) {
	s := newSys(t)
	fn := s.MustRegister("noop", func(c *Ctx) error { return nil })
	before := s.Lib.Phys.InUse()
	livePDs := s.Lib.LivePDs()
	for i := 0; i < 5; i++ {
		s.RunOnce(fn, 4)
	}
	if got := s.Lib.Phys.InUse(); got != before {
		t.Fatalf("leaked chunks: %d -> %d", before, got)
	}
	if got := s.Lib.LivePDs(); got != livePDs {
		t.Fatalf("leaked PDs: %d -> %d", livePDs, got)
	}
	if s.Table() != nil && s.Table().Live() != tableLiveBaseline(s) {
		t.Fatalf("leaked VTEs: %d live", s.Table().Live())
	}
}

// Table exposes the VMA table for leak checks.
func (s *System) Table() *vmatable.Table { return s.Lib.Table }

func tableLiveBaseline(s *System) int {
	// Boot VMAs (table, privlib heap, privlib code) plus one code VMA per
	// registered function.
	return 3 + len(s.funcs)
}

func TestNestedSyncCall(t *testing.T) {
	s := newSys(t)
	var order []string
	child := s.MustRegister("child", func(c *Ctx) error {
		order = append(order, "child")
		c.ExecNS(500)
		return nil
	})
	parent := s.MustRegister("parent", func(c *Ctx) error {
		order = append(order, "parent-pre")
		if err := c.Call(child, 2); err != nil {
			return err
		}
		order = append(order, "parent-post")
		return nil
	})
	r := s.RunOnce(parent, 4)
	if !r.done || r.status != nil {
		t.Fatalf("done=%v status=%v", r.done, r.status)
	}
	want := []string{"parent-pre", "child", "parent-post"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAsyncFanout(t *testing.T) {
	s := newSys(t)
	var completed int
	child := s.MustRegister("child", func(c *Ctx) error {
		c.ExecNS(2000)
		completed++
		return nil
	})
	parent := s.MustRegister("parent", func(c *Ctx) error {
		var cookies []Cookie
		for i := 0; i < 8; i++ {
			ck, err := c.Async(child, 1)
			if err != nil {
				return err
			}
			cookies = append(cookies, ck)
		}
		for _, ck := range cookies {
			if err := c.Wait(ck); err != nil {
				return err
			}
		}
		return nil
	})
	start := s.Eng.Now()
	r := s.RunOnce(parent, 4)
	if !r.done || r.status != nil {
		t.Fatalf("done=%v status=%v", r.done, r.status)
	}
	if completed != 8 {
		t.Fatalf("children completed = %d, want 8", completed)
	}
	// Async children run in parallel on other executors: wall time must be
	// far below 8x the child exec time.
	wall := s.cyclesToNS(s.Eng.Now() - start)
	if wall > 8*2000 {
		t.Fatalf("fanout wall time %.0f ns suggests serial execution", wall)
	}
}

func TestDeepNesting(t *testing.T) {
	s := newSys(t)
	const depth = 6
	ids := make([]FuncID, depth)
	for i := depth - 1; i >= 0; i-- {
		i := i
		ids[i] = s.MustRegister(fmt.Sprintf("level%d", i), func(c *Ctx) error {
			c.ExecNS(100)
			if i+1 < depth {
				return c.Call(ids[i+1], 1)
			}
			return nil
		})
	}
	r := s.RunOnce(ids[0], 2)
	if !r.done || r.status != nil {
		t.Fatalf("deep nesting failed: %v", r.status)
	}
}

func TestChildErrorPropagates(t *testing.T) {
	s := newSys(t)
	sentinel := errors.New("boom")
	child := s.MustRegister("failing", func(c *Ctx) error { return sentinel })
	parent := s.MustRegister("parent", func(c *Ctx) error {
		return c.Call(child, 1)
	})
	r := s.RunOnce(parent, 2)
	if !errors.Is(r.status, sentinel) {
		t.Fatalf("status = %v, want sentinel", r.status)
	}
}

func TestIsolationBetweenInvocations(t *testing.T) {
	// A live victim function leaks its heap address; a concurrently
	// running attacker forges it. The access must fault (§3.1): the
	// victim's VMA is alive but granted only to the victim's PD.
	s := newSys(t)
	var victimHeap uint64
	var probeErr error
	probe := s.MustRegister("attacker", func(c *Ctx) error {
		probeErr = c.Load(victimHeap)
		return nil
	})
	victim := s.MustRegister("victim", func(c *Ctx) error {
		victimHeap = c.cont.heapVA
		// Invoke the attacker while our heap is still mapped.
		return c.Call(probe, 1)
	})
	r := s.RunOnce(victim, 1)
	if !r.done || r.status != nil {
		t.Fatalf("victim failed: %v", r.status)
	}
	var f *privlib.Fault
	if !errors.As(probeErr, &f) {
		t.Fatalf("cross-PD access: %v, want fault", probeErr)
	}
	if f.Kind != vmatable.FaultPermission {
		t.Fatalf("fault kind = %v, want permission", f.Kind)
	}
}

func TestOwnVMAAccessible(t *testing.T) {
	s := newSys(t)
	fn := s.MustRegister("self", func(c *Ctx) error {
		if err := c.Store(c.cont.heapVA); err != nil {
			return fmt.Errorf("own heap: %w", err)
		}
		if err := c.Load(c.cont.stackVA); err != nil {
			return fmt.Errorf("own stack: %w", err)
		}
		va, err := c.Mmap(256, vmatable.PermRW)
		if err != nil {
			return err
		}
		if err := c.Store(va); err != nil {
			return fmt.Errorf("own mmap: %w", err)
		}
		return c.Munmap(va)
	})
	r := s.RunOnce(fn, 1)
	if r.status != nil {
		t.Fatal(r.status)
	}
}

func TestNoIsolationVariantRuns(t *testing.T) {
	s := newSys(t, func(c *Config) { c.Variant = privlib.NoIsolation })
	fn := s.MustRegister("noop", func(c *Ctx) error { c.ExecNS(500); return nil })
	r := s.RunOnce(fn, 4)
	if !r.done || r.status != nil {
		t.Fatalf("JordNI run failed: %v", r.status)
	}
	// Isolation overhead must be near zero (only mmap/munmap remain).
	jni := r.Trace.Isolation

	s2 := newSys(t)
	fn2 := s2.MustRegister("noop", func(c *Ctx) error { c.ExecNS(500); return nil })
	r2 := s2.RunOnce(fn2, 4)
	if jni >= r2.Trace.Isolation {
		t.Fatalf("JordNI isolation %d should be < Jord %d", jni, r2.Trace.Isolation)
	}
}

func TestLoadRunProducesLatencies(t *testing.T) {
	s := newSys(t, func(c *Config) { c.Seed = 7 })
	fn := s.MustRegister("work", func(c *Ctx) error { c.ExecNS(2000); return nil })
	res := s.RunLoad(LoadSpec{
		RPS:     1_000_000,
		Warmup:  200,
		Measure: 2000,
		Root:    func() (FuncID, int) { return fn, 15 },
	})
	if res.Completed != 2000 {
		t.Fatalf("completed = %d, want 2000", res.Completed)
	}
	p50 := res.Latency.Percentile(50)
	p99 := res.Latency.Percentile(99)
	if p50 < 2000 {
		t.Fatalf("p50 = %d ns, below pure exec time", p50)
	}
	if p99 < p50 {
		t.Fatal("p99 < p50")
	}
	// At 1 MRPS over 30 executors with 2us functions, utilization ~7%:
	// latency must be close to service time, far from SLO blowup.
	if p99 > 50_000 {
		t.Fatalf("p99 = %d ns at light load, expected < 50us", p99)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int64) {
		cfg := DefaultConfig()
		cfg.Seed = 42
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		child := s.MustRegister("c", func(c *Ctx) error { c.ExecNS(300); return nil })
		fn := s.MustRegister("p", func(c *Ctx) error {
			c.ExecNS(800)
			return c.Call(child, 2)
		})
		res := s.RunLoad(LoadSpec{
			RPS: 2_000_000, Warmup: 100, Measure: 500,
			Root: func() (FuncID, int) { return fn, 15 },
		})
		return res.Completed, res.Latency.Percentile(99)
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 || p1 != p2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, p1, c2, p2)
	}
}

func TestOverloadSaturates(t *testing.T) {
	s := newSys(t)
	fn := s.MustRegister("slow", func(c *Ctx) error { c.ExecNS(10_000); return nil })
	// 30 executors x 10us => ~3 MRPS capacity; offer 6 MRPS.
	res := s.RunLoad(LoadSpec{
		RPS: 6_000_000, Warmup: 500, Measure: 3000,
		Root: func() (FuncID, int) { return fn, 4 },
	})
	if res.Completed != 3000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Queueing must blow the tail far past service time.
	if p99 := res.Latency.Percentile(99); p99 < 100_000 {
		t.Fatalf("p99 = %d ns under 2x overload, expected queueing blowup", p99)
	}
}

func TestBreakdownAccounting(t *testing.T) {
	s := newSys(t)
	child := s.MustRegister("child", func(c *Ctx) error { c.ExecNS(1000); return nil })
	fn := s.MustRegister("root", func(c *Ctx) error {
		c.ExecNS(1000)
		return c.Call(child, 4)
	})
	res := s.RunLoad(LoadSpec{
		RPS: 500_000, Warmup: 100, Measure: 1000,
		Root: func() (FuncID, int) { return fn, 15 },
	})
	bd := res.MeanBreakdown(fn, s.M.Cfg.FreqGHz)
	if bd.Exec < 1000 {
		t.Fatalf("root exec = %.0f ns, want >= 1000", bd.Exec)
	}
	if bd.Isolation <= 0 || bd.Alloc <= 0 || bd.Dispatch <= 0 || bd.Comm <= 0 {
		t.Fatalf("breakdown has zeros: %+v", bd)
	}
	if bd.Service < bd.Exec+bd.Isolation {
		t.Fatalf("service %.0f < exec+isol %.0f", bd.Service, bd.Exec+bd.Isolation)
	}
	// Paper §6.2: isolation overhead per invocation is well below 1 us
	// (their number: < 120 ns; ours also counts nested-call transfers).
	if bd.Isolation > 500 {
		t.Fatalf("isolation = %.0f ns per invocation, want well under 1us", bd.Isolation)
	}
	if cbd := res.MeanBreakdown(child, s.M.Cfg.FreqGHz); cbd.Exec < 1000 {
		t.Fatalf("child exec = %.0f ns", cbd.Exec)
	}
}
