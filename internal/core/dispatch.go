package core

import (
	"fmt"

	"jord/internal/sim/engine"
)

// DispatchPolicy is the orchestrator's executor-selection strategy. The
// paper adopts JBSQ "inspired by state-of-the-art key-value stores" and
// leaves a policy comparison to future work (§3.3); the alternatives make
// that comparison runnable.
type DispatchPolicy int

const (
	// DispatchJBSQ is Join-Bounded-Shortest-Queue: probe every executor's
	// queue length, pick the shortest, refuse to exceed the bound.
	DispatchJBSQ DispatchPolicy = iota
	// DispatchRoundRobin sends requests to executors in turn, probing
	// nothing. Cheapest dispatch, worst tail under skewed service times.
	DispatchRoundRobin
	// DispatchRandom picks a uniformly random executor, probing nothing.
	DispatchRandom
	// DispatchJSQ is unbounded Join-Shortest-Queue: JBSQ's probing cost
	// without its admission bound.
	DispatchJSQ
)

func (p DispatchPolicy) String() string {
	switch p {
	case DispatchJBSQ:
		return "jbsq"
	case DispatchRoundRobin:
		return "round-robin"
	case DispatchRandom:
		return "random"
	case DispatchJSQ:
		return "jsq"
	default:
		return fmt.Sprintf("DispatchPolicy(%d)", int(p))
	}
}

// ParseDispatchPolicy maps a CLI name to a policy.
func ParseDispatchPolicy(name string) (DispatchPolicy, error) {
	switch name {
	case "jbsq", "":
		return DispatchJBSQ, nil
	case "round-robin", "rr":
		return DispatchRoundRobin, nil
	case "random":
		return DispatchRandom, nil
	case "jsq":
		return DispatchJSQ, nil
	default:
		return 0, fmt.Errorf("core: unknown dispatch policy %q", name)
	}
}

// pick selects the target executor under the configured policy and
// returns the probing cost. A nil executor means "no admissible target;
// retry when capacity frees" (only JBSQ refuses admission).
func (o *Orchestrator) pick(bypassBound bool) (*Executor, engine.Time) {
	switch o.sys.Cfg.Dispatch {
	case DispatchRoundRobin:
		o.rr++
		e := o.group[o.rr%len(o.group)]
		// One queue-tail write, no probing.
		return e, o.sys.M.Cfg.Instr(probeInstr)
	case DispatchRandom:
		e := o.group[o.sys.rng.IntN(len(o.group))]
		return e, o.sys.M.Cfg.Instr(probeInstr + 4) // RNG + index math
	case DispatchJSQ:
		e, cost := o.jbsq(true) // probe everyone, ignore the bound
		return e, cost
	default: // DispatchJBSQ
		return o.jbsq(bypassBound)
	}
}
