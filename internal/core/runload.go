package core

import (
	"jord/internal/sim/engine"
)

// RootSelector picks the next external request's root function and ArgBuf
// payload size (in cache blocks). Implementations draw from the workload's
// function mix.
type RootSelector func() (FuncID, int)

// LoadSpec configures one open-loop measurement run (wrk2-style, §5):
// Poisson arrivals at RPS, Warmup unmeasured requests, then Measure
// measured ones. Generation continues (unmeasured) until every measured
// request completes, so queue pressure persists through the window.
type LoadSpec struct {
	RPS     float64
	Warmup  uint64
	Measure uint64
	Root    RootSelector

	// MaxVirtualSeconds caps the run against pathological overload
	// (default 5 virtual seconds).
	MaxVirtualSeconds float64
}

// RunLoad drives the system with spec and returns the collected results.
// It owns the engine lifecycle: after RunLoad returns, the system must not
// be reused.
func (s *System) RunLoad(spec LoadSpec) *Results {
	if spec.Measure == 0 {
		spec.Measure = 1
	}
	if spec.MaxVirtualSeconds == 0 {
		spec.MaxVirtualSeconds = 5
	}
	s.warmup = spec.Warmup
	s.measureN = spec.Measure
	s.stopWhenDone = true

	cyclesPerSec := s.M.Cfg.FreqGHz * 1e9
	meanGap := cyclesPerSec / spec.RPS

	s.Eng.Spawn("loadgen", func(p *engine.Proc) {
		for {
			gap := engine.Time(s.rng.ExpFloat64()*meanGap + 0.5)
			p.Delay(gap)
			fn, blocks := spec.Root()
			s.Inject(fn, blocks)
		}
	})

	limit := engine.Time(spec.MaxVirtualSeconds * cyclesPerSec)
	s.Eng.Run(limit)
	s.Eng.Shutdown()
	return &s.Res
}

// RunOnce executes a single external request to completion with an
// otherwise idle system and returns it (for functional tests, examples,
// and trace dumps).
func (s *System) RunOnce(fn FuncID, blocks int) *Request {
	var req *Request
	s.Eng.Spawn("oneshot", func(p *engine.Proc) {
		req = s.Inject(fn, blocks)
	})
	// Run until the request completes or the event queue drains.
	for i := 0; i < 1<<20; i++ {
		if s.Eng.Run(engine.MaxTime) == 0 {
			break
		}
		if req != nil && req.done {
			break
		}
	}
	return req
}

// Drain finishes outstanding work (used after RunOnce sequences).
func (s *System) Drain() {
	s.Eng.Run(engine.MaxTime)
}

// Close tears down the engine's procs.
func (s *System) Close() { s.Eng.Shutdown() }

// MeanServiceNS returns the mean recorded service time in ns.
func (r *Results) MeanServiceNS() float64 { return r.ServiceTime.Mean() }

// P99LatencyNS returns the measured external p99 latency in ns.
func (r *Results) P99LatencyNS() float64 { return float64(r.Latency.Percentile(99)) }

// MeasuredRPS returns the achieved completion rate over the measurement
// window.
func (r *Results) MeasuredRPS(freqGHz float64) float64 {
	if r.Completed == 0 || r.LastComplete <= r.FirstArrival {
		return 0
	}
	seconds := float64(r.LastComplete-r.FirstArrival) / (freqGHz * 1e9)
	return float64(r.Completed) / seconds
}

// Breakdown is a per-invocation mean breakdown in nanoseconds.
type Breakdown struct {
	Exec      float64
	Isolation float64
	Alloc     float64
	Dispatch  float64
	Comm      float64
	Service   float64
}

// MeanBreakdown returns the average per-invocation breakdown across all
// measured invocations of fn.
func (r *Results) MeanBreakdown(fn FuncID, freqGHz float64) Breakdown {
	fs := r.PerFunc[fn]
	if fs == nil || fs.Count == 0 {
		return Breakdown{}
	}
	n := float64(fs.Count) * freqGHz // cycles -> ns, per invocation
	return Breakdown{
		Exec:      float64(fs.Exec) / n,
		Isolation: float64(fs.Isolation) / n,
		Alloc:     float64(fs.Alloc) / n,
		Dispatch:  float64(fs.Dispatch) / n,
		Comm:      float64(fs.Comm) / n,
		Service:   float64(fs.Service) / n,
	}
}

// OverheadFraction returns (isolation+dispatch) over the full busy time
// (service + dispatch) across all measured invocations — the §6.2
// overhead metric.
func (r *Results) OverheadFraction() float64 {
	var over, total engine.Time
	for _, fs := range r.PerFunc {
		over += fs.Isolation + fs.Dispatch
		total += fs.Service + fs.Dispatch
	}
	if total == 0 {
		return 0
	}
	return float64(over) / float64(total)
}
