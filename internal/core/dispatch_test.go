package core

import (
	"errors"
	"testing"

	"jord/internal/sim/engine"
)

// TestInternalPriorityPreventsLivelock demonstrates the §3.3 deadlock-
// avoidance design: with separate queues and internal-first dispatch, a
// nested workload makes progress under sustained external pressure; with
// the ablation (FIFO + bounded internal dispatch) the system livelocks —
// executors fill with parents whose children never run.
func TestInternalPriorityPreventsLivelock(t *testing.T) {
	run := func(unsafe bool) (completed uint64) {
		cfg := DefaultConfig()
		cfg.Seed = 9
		cfg.JBSQBound = 2
		cfg.UnsafeNoInternalPriority = unsafe
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		child := s.MustRegister("child", func(c *Ctx) error { c.ExecNS(300); return nil })
		parent := s.MustRegister("parent", func(c *Ctx) error {
			c.ExecNS(500)
			return c.Call(child, 2)
		})
		// Heavy sustained external load: arrivals outpace even the
		// orchestrators' dispatch capacity, so the external queues never
		// drain and nested requests only run if they have priority.
		res := s.RunLoad(LoadSpec{
			RPS:               80_000_000,
			Warmup:            50,
			Measure:           2000,
			Root:              func() (FuncID, int) { return parent, 4 },
			MaxVirtualSeconds: 0.005, // 5 ms of virtual time is plenty when live
		})
		return res.Completed
	}

	safe := run(false)
	unsafe := run(true)
	if safe != 2000 {
		t.Fatalf("safe policy completed %d/2000", safe)
	}
	// The ablated system must have made dramatically less progress: the
	// measured window never finishes within the virtual-time budget.
	if unsafe >= safe/10 {
		t.Fatalf("ablated policy completed %d, expected livelock (safe: %d)", unsafe, safe)
	}
}

// TestJBSQBoundRespected checks that no executor queue ever exceeds the
// bound for external requests.
func TestJBSQBoundRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JBSQBound = 3
	cfg.Seed = 4
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fn := s.MustRegister("slow", func(c *Ctx) error { c.ExecNS(5000); return nil })

	maxSeen := 0
	s.Eng.Spawn("watcher", func(p *engine.Proc) {
		for {
			for _, e := range s.Execs {
				if l := e.queueLen(); l > maxSeen {
					maxSeen = l
				}
			}
			p.Delay(1000)
		}
	})
	s.RunLoad(LoadSpec{
		RPS: 12_000_000, Warmup: 100, Measure: 2000,
		Root: func() (FuncID, int) { return fn, 4 },
	})
	if maxSeen > 3 {
		t.Fatalf("queue depth %d exceeded JBSQ bound 3", maxSeen)
	}
	if maxSeen == 0 {
		t.Fatal("watcher saw no queueing under overload")
	}
}

// TestFailureInjection drives a workload whose functions fail randomly and
// checks the error accounting and that failures do not leak resources.
func TestFailureInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 13
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	boom := errors.New("backend unavailable")
	n := 0
	flaky := s.MustRegister("flaky", func(c *Ctx) error {
		c.ExecNS(300)
		n++
		if n%3 == 0 {
			return boom
		}
		return nil
	})
	root := s.MustRegister("root", func(c *Ctx) error {
		c.ExecNS(400)
		return c.Call(flaky, 2)
	})

	before := s.Lib.Phys.InUse()
	res := s.RunLoad(LoadSpec{
		RPS: 500_000, Warmup: 100, Measure: 1500,
		Root: func() (FuncID, int) { return root, 4 },
	})
	if res.Completed != 1500 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Roughly a third of requests fail; all are counted.
	if res.Failed < 400 || res.Failed > 600 {
		t.Fatalf("failed = %d, want ~500", res.Failed)
	}
	// No systematic resource leak: anything above the baseline is bounded
	// by the handful of requests in flight at the instant the measurement
	// window closed (failures must not strand chunks or PDs).
	slack := len(s.Execs) * 8
	if got := s.Lib.Phys.InUse(); got > before+slack {
		t.Fatalf("failures leaked chunks: %d -> %d", before, got)
	}
	if s.Lib.LivePDs() > len(s.Execs) {
		t.Fatalf("failures leaked %d PDs", s.Lib.LivePDs())
	}
}

// TestMaxVirtualSecondsCap ensures pathological runs terminate.
func TestMaxVirtualSecondsCap(t *testing.T) {
	cfg := DefaultConfig()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A function slower than the arrival rate can ever drain.
	fn := s.MustRegister("glacial", func(c *Ctx) error { c.ExecNS(1e7); return nil })
	res := s.RunLoad(LoadSpec{
		RPS: 1_000_000, Warmup: 10, Measure: 100_000,
		Root:              func() (FuncID, int) { return fn, 2 },
		MaxVirtualSeconds: 0.002,
	})
	if res.Completed >= 100_000 {
		t.Fatal("expected the virtual-time cap to cut the run short")
	}
}

func TestParseDispatchPolicy(t *testing.T) {
	cases := map[string]DispatchPolicy{
		"":            DispatchJBSQ,
		"jbsq":        DispatchJBSQ,
		"jsq":         DispatchJSQ,
		"rr":          DispatchRoundRobin,
		"round-robin": DispatchRoundRobin,
		"random":      DispatchRandom,
	}
	for name, want := range cases {
		got, err := ParseDispatchPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseDispatchPolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseDispatchPolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
	for _, p := range []DispatchPolicy{DispatchJBSQ, DispatchJSQ, DispatchRoundRobin, DispatchRandom} {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
}

// TestAllPoliciesComplete runs every dispatch policy end to end.
func TestAllPoliciesComplete(t *testing.T) {
	for _, policy := range []DispatchPolicy{
		DispatchJBSQ, DispatchJSQ, DispatchRoundRobin, DispatchRandom,
	} {
		s := newSys(t, func(c *Config) { c.Dispatch = policy; c.Seed = 31 })
		fn := s.MustRegister("f", func(c *Ctx) error { c.ExecNS(700); return nil })
		res := s.RunLoad(LoadSpec{
			RPS: 2_000_000, Warmup: 100, Measure: 1000,
			Root: func() (FuncID, int) { return fn, 4 },
		})
		if res.Completed != 1000 {
			t.Errorf("%v: completed %d/1000", policy, res.Completed)
		}
	}
}

// TestRoundRobinSpreadsLoad checks round robin reaches every executor.
func TestRoundRobinSpreadsLoad(t *testing.T) {
	s := newSys(t, func(c *Config) { c.Dispatch = DispatchRoundRobin; c.Seed = 31 })
	fn := s.MustRegister("f", func(c *Ctx) error { c.ExecNS(200); return nil })
	s.RunLoad(LoadSpec{
		RPS: 2_000_000, Warmup: 50, Measure: 1000,
		Root: func() (FuncID, int) { return fn, 2 },
	})
	for _, e := range s.Execs {
		if e.Started == 0 {
			t.Fatalf("executor %d never used by round robin", e.Core)
		}
	}
}
