package core

import (
	"fmt"

	"jord/internal/mem/vmatable"
	"jord/internal/privlib"
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// Ctx is the programming interface a function body sees (Listing 1): it
// can compute, allocate VMAs, and invoke other functions synchronously or
// asynchronously with zero-copy ArgBufs. Every operation charges virtual
// time to the invocation's trace.
type Ctx struct {
	sys  *System
	cont *Continuation
	proc *engine.Proc

	// ncHeap mints fake addresses for NightCore-mode heap allocations.
	ncHeap uint64

	// activeBufs are ArgBufs currently owned by this PD, part of the
	// D-VLB working set (see vlbpressure.go).
	activeBufs []uint64
}

// Cookie identifies an asynchronous invocation for Wait.
type Cookie int

// PD returns the protection domain this function runs in.
func (c *Ctx) PD() vmatable.PDID { return c.cont.pd }

// Core returns the executor core running this function.
func (c *Ctx) Core() topo.CoreID { return c.cont.exec.Core }

// Now returns the current virtual time in cycles.
func (c *Ctx) Now() engine.Time { return c.proc.Now() }

// StackVA returns the base address of this invocation's private stack VMA.
func (c *Ctx) StackVA() uint64 { return c.cont.stackVA }

// HeapVA returns the base address of this invocation's private heap VMA.
func (c *Ctx) HeapVA() uint64 { return c.cont.heapVA }

// Exec models length cycles of function computation, including the D-VLB
// translation cost of the data accesses the computation performs.
func (c *Ctx) Exec(cycles engine.Time) {
	cost := cycles + c.touchData(cycles)
	c.proc.Delay(cost)
	c.cont.req.Trace.Exec += cost
	c.sys.trace(EvExecute, c.cont.req, c.Core(),
		fmt.Sprintf("%.0f ns", c.sys.cyclesToNS(cost)))
}

// ExecNS models ns nanoseconds of function computation.
func (c *Ctx) ExecNS(ns float64) { c.Exec(c.sys.nsToCycles(ns)) }

// Mmap allocates a VMA into the function's PD (Listing 1 line 19). The
// latency is charged to the isolation bucket. Under NightCore this is a
// plain heap allocation.
func (c *Ctx) Mmap(bytes uint64, perm vmatable.Perm) (uint64, error) {
	if c.sys.Cfg.NightCore {
		c.proc.Delay(c.sys.IPC.Malloc())
		c.ncHeap++
		return 0xAC<<32 | c.ncHeap, nil
	}
	va, lat, err := c.sys.Lib.Mmap(c.Core(), c.cont.pd, bytes, perm)
	if err != nil {
		return 0, err
	}
	lat += c.privCallInstr()
	c.proc.Delay(lat)
	c.cont.req.Trace.Alloc += lat
	c.noteActiveBuf(va)
	return va, nil
}

// privCallInstr is the I-VLB cost of entering and leaving PrivLib.
func (c *Ctx) privCallInstr() engine.Time {
	return c.sys.touchInstr(c.Core(), c.cont.pd, c.sys.funcDef(c.cont.req.Fn).codeVA)
}

// Munmap deallocates a VMA (Listing 1 line 21).
func (c *Ctx) Munmap(va uint64) error {
	if c.sys.Cfg.NightCore {
		c.proc.Delay(c.sys.IPC.Malloc()) // free() is as cheap as malloc()
		return nil
	}
	lat, err := c.sys.Lib.Munmap(c.Core(), c.cont.pd, va)
	if err != nil {
		return err
	}
	lat += c.privCallInstr()
	c.proc.Delay(lat)
	c.cont.req.Trace.Alloc += lat
	c.dropActiveBuf(va)
	return nil
}

// Load models an explicit read of addr from this PD — the threat-model
// surface: forged addresses fault (§3.1). The NightCore baseline performs
// no in-process checks.
func (c *Ctx) Load(addr uint64) error {
	if c.sys.Cfg.NightCore {
		return nil
	}
	lat, err := c.sys.Lib.Access(c.Core(), c.cont.pd, addr, vmatable.PermR, false)
	c.proc.Delay(lat)
	return err
}

// Store models an explicit write of addr from this PD.
func (c *Ctx) Store(addr uint64) error {
	if c.sys.Cfg.NightCore {
		return nil
	}
	lat, err := c.sys.Lib.Access(c.Core(), c.cont.pd, addr, vmatable.PermW, false)
	c.proc.Delay(lat)
	return err
}

// Async invokes fn with a fresh ArgBuf of the given payload size and
// returns immediately with a cookie to Wait on (Listing 1: jord::async).
func (c *Ctx) Async(fn FuncID, argBlocks int) (Cookie, error) {
	child, err := c.submit(fn, argBlocks)
	if err != nil {
		return 0, err
	}
	c.cont.children = append(c.cont.children, child)
	return Cookie(len(c.cont.children) - 1), nil
}

// Call invokes fn synchronously: it submits the request and suspends until
// the callee finishes (Listing 1: jord::call).
func (c *Ctx) Call(fn FuncID, argBlocks int) error {
	cookie, err := c.Async(fn, argBlocks)
	if err != nil {
		return err
	}
	return c.Wait(cookie)
}

// Wait blocks until the invocation named by cookie completes, suspending
// the continuation (cexit) if necessary, and hands the result ArgBuf back
// to this PD.
func (c *Ctx) Wait(cookie Cookie) error {
	if int(cookie) < 0 || int(cookie) >= len(c.cont.children) {
		return fmt.Errorf("core: wait on unknown cookie %d", cookie)
	}
	child := c.cont.children[cookie]
	if child == nil {
		return fmt.Errorf("core: wait on already-collected cookie %d", cookie)
	}
	if !child.done {
		c.suspendFor(child)
	}
	if c.sys.Cfg.NightCore {
		// Collect: copy the result out of shm and deserialize it.
		cost := c.sys.IPC.MessageRecvCPU(child.Blocks * 64)
		c.proc.Delay(cost)
		c.cont.req.Trace.Comm += cost
		c.cont.children[cookie] = nil
		return child.status
	}
	if child.ArgBufVA == 0 {
		// The child ran on another worker server; its results arrived
		// over the network (costs charged on the remote side), not in a
		// local ArgBuf.
		c.cont.children[cookie] = nil
		return child.status
	}
	// Collect: the result ArgBuf returns to this PD and its blocks stream
	// from the callee's core (zero-copy).
	lib := c.sys.Lib
	lat, err := lib.Pmove(c.Core(), privlib.ExecutorPD, child.ArgBufVA, c.cont.pd, vmatable.PermRW)
	if err != nil {
		panic(fmt.Sprintf("core: collecting child ArgBuf: %v", err))
	}
	lat += c.privCallInstr()
	c.proc.Delay(lat)
	c.cont.req.Trace.Isolation += lat
	c.noteActiveBuf(child.ArgBufVA)
	if child.Producer != c.Core() && child.Blocks > 0 {
		xfer := c.sys.MM.BlockStreamTransfer(child.Producer, c.Core(), child.Blocks, child.ArgBufVA/64)
		c.proc.Delay(xfer)
		c.cont.req.Trace.Comm += xfer
	}
	c.cont.children[cookie] = nil
	return child.status
}

// submit creates the child request: allocate its ArgBuf in this PD, write
// the inputs, transfer the buffer to the executor domain, and enqueue the
// request on the orchestrator's internal queue.
func (c *Ctx) submit(fn FuncID, argBlocks int) (*Request, error) {
	if int(fn) < 0 || int(fn) >= len(c.sys.funcs) {
		return nil, fmt.Errorf("core: call to unknown function %d", fn)
	}
	lib := c.sys.Lib
	e := c.cont.exec
	r := c.cont.req

	bytes := uint64(argBlocks) * 64
	if bytes == 0 {
		bytes = 64
	}

	child := c.sys.newRequest(fn, argBlocks, false, c.cont)
	child.Producer = c.Core()
	child.measured = r.measured
	child.staged = true

	if c.sys.Cfg.NightCore {
		// Serialize the arguments, copy into shm, pipe-notify the gateway.
		cost := c.sys.IPC.MessageSendCPU(int(bytes))
		c.proc.Delay(cost)
		r.Trace.Comm += cost
	} else {
		va, lat, err := lib.Mmap(c.Core(), c.cont.pd, bytes, vmatable.PermRW)
		if err != nil {
			return nil, err
		}
		c.proc.Delay(lat + c.privCallInstr())
		r.Trace.Alloc += lat
		c.cont.ownedBufs = append(c.cont.ownedBufs, va)

		// Populate inputs (stores through the L1).
		writeCost := engine.Time(argBlocks) * c.sys.MM.L1Hit()
		c.proc.Delay(writeCost)
		r.Trace.Exec += writeCost

		// Hand the buffer to the runtime.
		lat, err = lib.Pmove(c.Core(), c.cont.pd, va, privlib.ExecutorPD, vmatable.PermRW)
		if err != nil {
			return nil, err
		}
		c.proc.Delay(lat + c.privCallInstr())
		r.Trace.Isolation += lat
		child.ArgBufVA = va
	}

	// Submitting the internal request costs a control message to the
	// orchestrator.
	sub := c.sys.M.NetLatency(e.Core, e.orch.Core, ctrlMsgBytes)
	c.proc.Delay(sub)
	r.Trace.Comm += sub
	c.sys.trace(EvSubmit, r, c.Core(), fmt.Sprintf("child req %d -> %s", child.ID, c.sys.funcDef(fn).Name))
	e.orch.submitInternal(child)
	return child, nil
}

// suspendFor performs cexit: the continuation yields the core back to its
// executor until the child completes and the executor centers us again.
func (c *Ctx) suspendFor(child *Request) {
	e := c.cont.exec
	if c.sys.Cfg.NightCore {
		// The worker thread blocks on the result pipe: a voluntary
		// context switch instead of a 12 ns cexit.
		cost := c.sys.IPC.ThreadSwitch()
		c.proc.Delay(cost)
		c.cont.req.Trace.Comm += cost
	} else {
		lat, err := c.sys.Lib.Cexit(c.Core())
		if err != nil {
			panic(fmt.Sprintf("core: cexit: %v", err))
		}
		c.proc.Delay(lat)
		c.cont.req.Trace.Isolation += lat
	}

	// The Delay above yielded the engine; the child may have completed in
	// the meantime. Re-check before committing to the suspension so the
	// completion notification cannot be lost.
	if child.done {
		return
	}
	c.cont.waiting = child
	e.Suspends++
	c.sys.trace(EvSuspend, c.cont.req, c.Core(), fmt.Sprintf("waiting on req %d", child.ID))
	e.yieldFromContinuation()
	c.proc.Park() // until resumeContinuation unparks us
}
