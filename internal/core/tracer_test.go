package core

import (
	"strings"
	"testing"
)

func TestTracerCapturesFigure4Flow(t *testing.T) {
	s := newSys(t)
	tr := &Tracer{}
	s.SetTracer(tr)
	child := s.MustRegister("child", func(c *Ctx) error { c.ExecNS(200); return nil })
	root := s.MustRegister("root", func(c *Ctx) error {
		c.ExecNS(400)
		return c.Call(child, 2)
	})
	if r := s.RunOnce(root, 4); r == nil || r.status != nil {
		t.Fatal("run failed")
	}

	// The Figure 4 milestones must appear, in causal order for the root
	// request.
	want := []EventKind{EvArrive, EvStage, EvDispatch, EvDequeue, EvPDInit, EvEnter, EvExecute}
	idx := 0
	for _, ev := range tr.Events {
		if idx < len(want) && ev.Kind == want[idx] {
			idx++
		}
	}
	if idx != len(want) {
		t.Fatalf("missing milestone %v in trace (%d events)", want[idx], len(tr.Events))
	}
	// The nested call produces submit/suspend/resume and a second
	// dequeue.
	counts := map[EventKind]int{}
	for _, ev := range tr.Events {
		counts[ev.Kind]++
	}
	if counts[EvSubmit] != 1 || counts[EvSuspend] > 1 || counts[EvDequeue] != 2 {
		t.Fatalf("nested flow wrong: %v", counts)
	}
	if counts[EvComplete] != 1 || counts[EvTeardown] != 2 {
		t.Fatalf("completion flow wrong: %v", counts)
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].At < tr.Events[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
	out := tr.Render(s.M.Cfg.FreqGHz)
	if !strings.Contains(out, "dispatch") || !strings.Contains(out, "pd-init") {
		t.Fatal("render missing events")
	}
}

func TestTracerLimit(t *testing.T) {
	s := newSys(t)
	tr := &Tracer{Limit: 3}
	s.SetTracer(tr)
	fn := s.MustRegister("f", func(c *Ctx) error { c.ExecNS(100); return nil })
	s.RunOnce(fn, 2)
	if len(tr.Events) != 3 {
		t.Fatalf("limit not enforced: %d events", len(tr.Events))
	}
}

func TestTracerDisabledByDefault(t *testing.T) {
	s := newSys(t)
	fn := s.MustRegister("f", func(c *Ctx) error { return nil })
	if r := s.RunOnce(fn, 2); r == nil {
		t.Fatal("run failed")
	}
	// No tracer: nothing to assert beyond "does not crash"; the nil path
	// is exercised on every trace call site.
}
