package core

import (
	"testing"

	"jord/internal/sim/topo"
)

func newCluster(t *testing.T, mutate ...func(*ClusterConfig)) *Cluster {
	t.Helper()
	cfg := DefaultClusterConfig()
	cfg.Seed = 21
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterBasicRun(t *testing.T) {
	c := newCluster(t)
	child, err := c.RegisterAll("child", func(x *Ctx) error { x.ExecNS(300); return nil })
	if err != nil {
		t.Fatal(err)
	}
	root, err := c.RegisterAll("root", func(x *Ctx) error {
		x.ExecNS(600)
		return x.Call(child, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunLoad(LoadSpec{
		RPS: 2_000_000, Warmup: 100, Measure: 2000,
		Root: func() (FuncID, int) { return root, 8 },
	})
	if res.Completed != 2000 {
		t.Fatalf("completed = %d, want 2000", res.Completed)
	}
	if res.Latency.Percentile(99) <= 0 {
		t.Fatal("no latencies")
	}
	// The front-end spreads load: every server completed work.
	for i, s := range c.Servers {
		if s.Res.Completed == 0 {
			t.Errorf("server %d completed nothing", i)
		}
	}
}

func TestClusterScalesBeyondOneServer(t *testing.T) {
	// Offered load ~2x one server's capacity must complete fine on four
	// servers.
	run := func(servers int) (completed uint64, p99 int64) {
		c := newCluster(t, func(cfg *ClusterConfig) { cfg.Servers = servers })
		fn, err := c.RegisterAll("work", func(x *Ctx) error { x.ExecNS(2500); return nil })
		if err != nil {
			t.Fatal(err)
		}
		res := c.RunLoad(LoadSpec{
			RPS: 15_000_000, Warmup: 300, Measure: 3000,
			Root:              func() (FuncID, int) { return fn, 8 },
			MaxVirtualSeconds: 0.05,
		})
		return res.Completed, res.Latency.Percentile(99)
	}
	c1, p1 := run(1)
	c4, p4 := run(4)
	if c4 != 3000 {
		t.Fatalf("4-server cluster completed %d/3000", c4)
	}
	// One server at 15 MRPS of 2.5us work is far past saturation: either
	// it cannot finish the window in time or its tail explodes.
	if c1 == 3000 && p1 < 4*p4 {
		t.Fatalf("single server should be saturated: completed=%d p99=%d (cluster %d)", c1, p1, p4)
	}
}

func TestClusterSpilloverForwardsInternals(t *testing.T) {
	// Two servers; the workload's fan-out floods the executors of the
	// origin server so internal requests spill over the network.
	c := newCluster(t, func(cfg *ClusterConfig) {
		cfg.Servers = 2
		cfg.SpillQueueThreshold = 1 // spill aggressively
	})
	leaf, err := c.RegisterAll("leaf", func(x *Ctx) error { x.ExecNS(2000); return nil })
	if err != nil {
		t.Fatal(err)
	}
	fan, err := c.RegisterAll("fan", func(x *Ctx) error {
		cookies := make([]Cookie, 0, 40)
		for i := 0; i < 40; i++ {
			ck, err := x.Async(leaf, 2)
			if err != nil {
				return err
			}
			cookies = append(cookies, ck)
		}
		for _, ck := range cookies {
			if err := x.Wait(ck); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunLoad(LoadSpec{
		RPS: 100_000, Warmup: 20, Measure: 300,
		Root: func() (FuncID, int) { return fan, 8 },
	})
	if res.Completed != 300 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if c.Forwarded == 0 {
		t.Fatal("no internal requests were forwarded despite saturation")
	}
	// Failed must be zero: forwarding preserves results and status.
	if res.Failed != 0 {
		t.Fatalf("forwarded requests failed: %d", res.Failed)
	}
}

func TestClusterForwardingPaysNetworkLatency(t *testing.T) {
	// A forwarded child's parent observes at least one network RTT.
	mk := func(spill bool) float64 {
		c := newCluster(t, func(cfg *ClusterConfig) {
			cfg.Servers = 2
			cfg.PerServer.Machine = topo.Scale(16) // few executors: easy to saturate
			if spill {
				cfg.SpillQueueThreshold = 1
			} else {
				cfg.SpillQueueThreshold = 0
			}
			cfg.NetworkRTTNS = 50_000 // exaggerate for visibility
		})
		leaf, _ := c.RegisterAll("leaf", func(x *Ctx) error { x.ExecNS(3000); return nil })
		fan, _ := c.RegisterAll("fan", func(x *Ctx) error {
			cookies := make([]Cookie, 0, 20)
			for i := 0; i < 20; i++ {
				ck, err := x.Async(leaf, 2)
				if err != nil {
					return err
				}
				cookies = append(cookies, ck)
			}
			for _, ck := range cookies {
				if err := x.Wait(ck); err != nil {
					return err
				}
			}
			return nil
		})
		res := c.RunLoad(LoadSpec{
			RPS: 30_000, Warmup: 5, Measure: 60,
			Root:              func() (FuncID, int) { return fan, 8 },
			MaxVirtualSeconds: 0.1,
		})
		if spill && c.Forwarded == 0 {
			t.Fatal("expected forwarding")
		}
		return float64(res.Latency.Percentile(99))
	}
	local := mk(false)
	spilled := mk(true)
	if spilled < local+25_000 {
		t.Fatalf("forwarded p99 %.0f ns should exceed local %.0f by ~RTT", spilled, local)
	}
}

func TestClusterResourceHygiene(t *testing.T) {
	// After a run with forwarding, no server leaks PDs beyond in-flight
	// slack, and VMA populations stay bounded.
	c := newCluster(t, func(cfg *ClusterConfig) {
		cfg.Servers = 2
		cfg.SpillQueueThreshold = 2
	})
	leaf, _ := c.RegisterAll("leaf", func(x *Ctx) error { x.ExecNS(1000); return nil })
	fan, _ := c.RegisterAll("fan", func(x *Ctx) error {
		for i := 0; i < 10; i++ {
			if err := x.Call(leaf, 2); err != nil {
				return err
			}
		}
		return nil
	})
	res := c.RunLoad(LoadSpec{
		RPS: 500_000, Warmup: 50, Measure: 500,
		Root: func() (FuncID, int) { return fan, 8 },
	})
	if res.Completed != 500 {
		t.Fatalf("completed = %d", res.Completed)
	}
	for i, s := range c.Servers {
		if live := s.Lib.LivePDs(); live > len(s.Execs) {
			t.Errorf("server %d: %d live PDs after run", i, live)
		}
		if inUse := s.Lib.Phys.InUse(); inUse > 3+len(s.funcs)+len(s.Execs)*12 {
			t.Errorf("server %d: %d chunks in use after run", i, inUse)
		}
	}
}
