package core

import (
	"jord/internal/mem/vmatable"
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// VLB pressure model (Figure 12). A function's data accesses rotate over
// its active VMAs — private stack, private heap, the input ArgBuf, and
// recently created/collected ArgBufs. When that working set fits in the
// D-VLB, only cold misses occur; when it exceeds a fully-associative LRU
// VLB under a cyclic access pattern, *every* access misses (classic LRU
// thrash), each paying a VTW walk. The instruction side bounces between
// the function's code VMA and PrivLib's code VMA on every PrivLib call,
// exercising the I-VLB the same way.
const (
	// accessGapCycles is the average spacing of data memory accesses in
	// function code (one access every 2 ns at 4 GHz).
	accessGapCycles = 8
	// steadyWalkCycles is the VTW walk in steady-state thrash: position
	// computation plus an L1-resident VTE fetch (the paper's 2 ns common
	// case).
	steadyWalkCycles = 8
	// maxActiveBufs bounds how many recent ArgBufs stay in the rotation
	// (functions touch at most a couple of result buffers at a time).
	maxActiveBufs = 2
)

// activeVMAs returns the continuation's current data working set.
func (c *Ctx) activeVMAs() []uint64 {
	vmas := make([]uint64, 0, 3+maxActiveBufs)
	if c.cont.stackVA != 0 {
		vmas = append(vmas, c.cont.stackVA)
	}
	if c.cont.heapVA != 0 {
		vmas = append(vmas, c.cont.heapVA)
	}
	if c.cont.req.ArgBufVA != 0 {
		vmas = append(vmas, c.cont.req.ArgBufVA)
	}
	vmas = append(vmas, c.activeBufs...)
	return vmas
}

// noteActiveBuf adds an ArgBuf this function currently owns to the data
// working set.
func (c *Ctx) noteActiveBuf(va uint64) {
	c.activeBufs = append(c.activeBufs, va)
	if len(c.activeBufs) > maxActiveBufs {
		c.activeBufs = c.activeBufs[1:]
	}
}

// dropActiveBuf removes an ArgBuf whose permission was handed away.
func (c *Ctx) dropActiveBuf(va uint64) {
	for i, v := range c.activeBufs {
		if v == va {
			c.activeBufs = append(c.activeBufs[:i], c.activeBufs[i+1:]...)
			return
		}
	}
}

// touchData charges the D-VLB cost of execCycles worth of computation:
// one real pass over the working set (cold misses walk, hits are free and
// maintain LRU state), plus the steady-state thrash penalty when the set
// does not fit.
func (c *Ctx) touchData(execCycles engine.Time) engine.Time {
	if c.sys.Cfg.NightCore {
		return 0
	}
	vmas := c.activeVMAs()
	var extra engine.Time
	for _, va := range vmas {
		lat, err := c.sys.Lib.Access(c.Core(), c.cont.pd, va, vmatable.PermR, false)
		if err != nil {
			// Working-set bookkeeping should only hold accessible VMAs.
			panic("core: working-set VMA inaccessible: " + err.Error())
		}
		extra += lat
	}
	if len(vmas) > c.sys.Cfg.VLB.DVLBEntries {
		// Cyclic pattern over a too-small LRU VLB: every access misses.
		accesses := execCycles / accessGapCycles
		extra += accesses * (steadyWalkCycles + c.sys.Lib.WalkPenalty())
	}
	return extra
}

// touchInstr charges the I-VLB cost of one PrivLib call from a function or
// the executor: control flow enters PrivLib's code VMA through its uatg
// gate and returns to the caller's code VMA.
func (s *System) touchInstr(core topo.CoreID, pd vmatable.PDID, fnCodeVA uint64) engine.Time {
	if s.Cfg.NightCore {
		return 0
	}
	lat1, _ := s.Lib.Sub.Access(core, pd, s.Lib.PrivCodeVA, vmatable.PermX, true, true)
	lat2, _ := s.Lib.Sub.Access(core, pd, fnCodeVA, vmatable.PermX, true, true)
	return lat1 + lat2
}
