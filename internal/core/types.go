// Package core implements the Jord runtime (paper §3): worker servers
// whose orchestrator threads dispatch function invocation requests to
// executor threads with JBSQ load balancing inside a single address space,
// and whose executors run each function as a suspendable continuation in a
// fresh protection domain, with ArgBufs passed zero-copy by transferring
// VMA permissions.
//
// The runtime executes on the deterministic simulation engine: every core
// is an engine.Proc, every latency comes from the privlib/vlb/memmodel
// hardware model, and user functions are Go closures over a Ctx that
// exposes the paper's programming model (Listing 1): call/async/wait,
// mmap/munmap, and explicit compute segments.
package core

import (
	"jord/internal/mem/vmatable"
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// FuncID names a registered function.
type FuncID int

// FuncDef is a deployable function: a body plus the code VMA the runtime
// created for it at registration.
type FuncDef struct {
	ID   FuncID
	Name string
	Body func(*Ctx) error

	codeVA uint64
}

// Request is one function invocation request flowing through the system.
type Request struct {
	ID     uint64
	Fn     FuncID
	Blocks int // ArgBuf payload size in cache blocks (~15 on average, §6.3)

	ArgBufVA uint64      // the ArgBuf VMA carrying inputs and outputs
	Producer topo.CoreID // core that last wrote the ArgBuf (transfer source)

	External bool
	Arrival  engine.Time // when the orchestrator received it (latency start)

	// measured marks requests inside the measurement window (after warmup,
	// before cooldown); nested requests inherit it from their parent.
	measured bool
	// staged marks that the orchestrator already prepared the payload
	// (ArgBuf in Jord, shm buffer in NightCore).
	staged bool
	// remoteHop marks a nested request forwarded to another worker
	// server over the network (§3.3).
	remoteHop bool
	// onComplete, when set, fires once at external completion (cluster
	// measurement windows).
	onComplete func()

	// Nested-call linkage: the parent continuation to resume on completion.
	parent *Continuation

	done   bool
	status error

	// ServiceStart is when an executor dequeued the request.
	ServiceStart engine.Time
	Trace        Trace
}

// Trace is the per-invocation service-time breakdown (Figure 11).
// Isolation covers only what the JordNI variant bypasses (PD lifecycle and
// permission transfers); VMA allocation — which every variant pays, since
// functions need memory regardless — is tracked separately as Alloc.
type Trace struct {
	Dispatch  engine.Time // orchestrator: JBSQ probing + enqueue + ArgBuf staging
	Isolation engine.Time // PrivLib: PD ops (cget/cput/ccall/...), pmove/pcopy
	Alloc     engine.Time // PrivLib: mmap/munmap of stacks, heaps, ArgBufs
	Comm      engine.Time // ArgBuf cache-block transfers and notifications
	Exec      engine.Time // function body compute
	Queue     engine.Time // waiting in orchestrator/executor queues
}

// Continuation is one executing function instance: its engine proc,
// protection domain, private stack/heap, and nested-call state
// (paper §3.4: "the executor regards each function as a continuation with
// private register states, stack, and heap inside the isolated PD").
type Continuation struct {
	req  *Request
	exec *Executor
	proc *engine.Proc
	pd   vmatable.PDID

	stackVA, heapVA uint64
	ownedBufs       []uint64 // ArgBuf VMAs created by this function

	children []*Request
	waiting  *Request // child currently blocked on (sync call or wait)

	finished bool
	err      error
}

// forgetOwnedBuf drops an ArgBuf from the continuation's teardown list
// (used when the buffer's lifetime moved elsewhere, e.g. a network
// forward consumed it).
func (c *Continuation) forgetOwnedBuf(va uint64) {
	for i, v := range c.ownedBufs {
		if v == va {
			c.ownedBufs = append(c.ownedBufs[:i], c.ownedBufs[i+1:]...)
			return
		}
	}
}
