package core

import (
	"fmt"
	"math/rand/v2"

	"jord/internal/privlib"
	"jord/internal/sim/engine"
)

// ClusterConfig assembles multiple worker servers behind a front-end load
// balancer, all sharing one virtual timeline. It realizes the §3.3
// sentence the single-server evaluation leaves implicit: "For internal
// requests that cannot be served on the current worker server, the
// orchestrator sends them through the network to find another worker
// server for execution."
type ClusterConfig struct {
	Servers   int
	PerServer Config

	// NetworkRTTNS is the server-to-server RPC round trip (kernel-bypass
	// datacenter networking, ~10 us).
	NetworkRTTNS float64
	// NetworkBytesPerNS is the per-byte wire+NIC throughput for ArgBuf
	// payloads crossing servers (~12.5 GB/s per flow).
	NetworkBytesPerNS float64

	// SpillQueueThreshold forwards an internal request to another server
	// when every local executor's queue is at or beyond it (0 disables
	// spillover).
	SpillQueueThreshold int

	// SkewFirst, when positive, routes that fraction of external requests
	// to server 0 (the rest round-robin over the others) — an imbalanced
	// front-end that exercises the spillover path.
	SkewFirst float64

	Seed uint64
}

// DefaultClusterConfig is a 4-server cluster of the paper's 32-core
// machines.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Servers:             4,
		PerServer:           DefaultConfig(),
		NetworkRTTNS:        10_000,
		NetworkBytesPerNS:   12.5,
		SpillQueueThreshold: 8,
		Seed:                1,
	}
}

// Cluster is a set of worker servers on one engine.
type Cluster struct {
	Cfg     ClusterConfig
	Eng     *engine.Engine
	Servers []*System

	rng    *rand.Rand
	nextLB int

	// Forwarded counts internal requests spilled to a remote server.
	Forwarded uint64
}

// NewCluster boots all servers. Workload functions must be registered
// identically on every server (use RegisterAll).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("core: cluster needs at least one server")
	}
	c := &Cluster{
		Cfg: cfg,
		Eng: engine.New(),
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xc1d4)),
	}
	for i := 0; i < cfg.Servers; i++ {
		s, err := newSystemOn(c.Eng, cfg.PerServer, i)
		if err != nil {
			return nil, err
		}
		s.cluster = c
		c.Servers = append(c.Servers, s)
	}
	return c, nil
}

// RegisterAll deploys a function on every server under the same FuncID.
func (c *Cluster) RegisterAll(name string, body func(*Ctx) error) (FuncID, error) {
	var id FuncID
	for i, s := range c.Servers {
		fid, err := s.Register(name, body)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			id = fid
		} else if fid != id {
			return 0, fmt.Errorf("core: function ID skew across servers (%d vs %d)", fid, id)
		}
	}
	return id, nil
}

// Inject delivers an external request to a server: round robin, or skewed
// toward server 0 when the config says so.
func (c *Cluster) Inject(fn FuncID, blocks int) *Request {
	if c.Cfg.SkewFirst > 0 && c.rng.Float64() < c.Cfg.SkewFirst {
		return c.Servers[0].Inject(fn, blocks)
	}
	c.nextLB++
	if len(c.Servers) > 1 && c.Cfg.SkewFirst > 0 {
		return c.Servers[1+c.nextLB%(len(c.Servers)-1)].Inject(fn, blocks)
	}
	return c.Servers[c.nextLB%len(c.Servers)].Inject(fn, blocks)
}

// netLatency returns the one-way network latency for a payload.
func (c *Cluster) netLatency(bytes int) engine.Time {
	ns := c.Cfg.NetworkRTTNS/2 + float64(bytes)/c.Cfg.NetworkBytesPerNS
	return c.Servers[0].nsToCycles(ns)
}

// spillTarget picks the remote server for a forwarded request (round
// robin over the others).
func (c *Cluster) spillTarget(origin *System) *System {
	for {
		c.nextLB++
		t := c.Servers[c.nextLB%len(c.Servers)]
		if t != origin {
			return t
		}
	}
}

// forwardInternal ships an internal request to another server: the ArgBuf
// contents cross the wire (zero-copy holds only within an address space),
// and a fresh ArgBuf is staged on the remote side when the request is
// dispatched there. Called from the origin orchestrator's proc.
func (c *Cluster) forwardInternal(origin *Orchestrator, r *Request, p *engine.Proc) {
	target := c.spillTarget(origin.sys)
	c.Forwarded++

	bytes := r.Blocks * 64
	// Origin side: serialize out of the ArgBuf and hand to the NIC; the
	// local ArgBuf is dead after the send.
	sendCPU := origin.sys.IPC.Serialize(bytes) + origin.sys.IPC.ShmCopy(bytes)
	p.Delay(sendCPU)
	r.Trace.Comm += sendCPU
	if !origin.sys.Cfg.NightCore && r.ArgBufVA != 0 {
		lat, err := origin.sys.Lib.Munmap(origin.Core, privlib.ExecutorPD, r.ArgBufVA)
		if err != nil {
			panic(fmt.Sprintf("core: freeing forwarded ArgBuf: %v", err))
		}
		p.Delay(lat)
		r.Trace.Alloc += lat
		// The parent must no longer tear this buffer down at its finish.
		r.parent.forgetOwnedBuf(r.ArgBufVA)
		r.ArgBufVA = 0
	}
	r.staged = false // the remote orchestrator stages a fresh buffer
	r.remoteHop = true

	wire := c.netLatency(bytes)
	tOrch := target.Orchs[int(r.ID)%len(target.Orchs)]
	origin.sys.Eng.Schedule(wire, func() {
		r.Producer = tOrch.Core
		tOrch.submitInternal(r)
	})
}

// completeRemote returns a finished forwarded request's results to the
// parent's server over the network, then resumes the parent. Called from
// the remote executor's proc, which pays the serialization CPU.
func (c *Cluster) completeRemote(e *Executor, r *Request, p *engine.Proc) {
	parent := r.parent
	bytes := r.Blocks * 64
	sendCPU := e.sys.IPC.Serialize(bytes) + e.sys.IPC.ShmCopy(bytes)
	p.Delay(sendCPU)
	r.Trace.Comm += sendCPU
	wire := c.netLatency(bytes)
	r.Producer = parent.exec.Core // collection is then server-local
	e.sys.Eng.Schedule(wire, func() {
		r.done = true
		if parent.waiting == r {
			parent.waiting = nil
			parent.exec.readyResume(parent)
		}
	})
}

// RunLoad drives the whole cluster open-loop and aggregates per-server
// results. Measurement windows are cluster-wide.
func (c *Cluster) RunLoad(spec LoadSpec) *Results {
	if spec.Measure == 0 {
		spec.Measure = 1
	}
	if spec.MaxVirtualSeconds == 0 {
		spec.MaxVirtualSeconds = 5
	}
	// The first server owns the window bookkeeping; Inject round-robins,
	// so divide the window across servers via a shared counter instead.
	for _, s := range c.Servers {
		s.stopWhenDone = false // the cluster stops the engine itself
		s.warmup = 0
		s.measureN = 0
	}
	var injected, outstanding uint64
	warmed := func() bool { return injected > spec.Warmup }
	doneInjecting := func() bool { return injected > spec.Warmup+spec.Measure }

	cyclesPerSec := c.Servers[0].M.Cfg.FreqGHz * 1e9
	meanGap := cyclesPerSec / spec.RPS
	rng := rand.New(rand.NewPCG(c.Cfg.Seed, 77))

	c.Eng.Spawn("cluster-loadgen", func(p *engine.Proc) {
		for {
			p.Delay(engine.Time(rng.ExpFloat64()*meanGap + 0.5))
			fn, blocks := spec.Root()
			injected++
			r := c.Inject(fn, blocks)
			if warmed() && !doneInjecting() {
				r.measured = true
				r.onComplete = func() {
					outstanding--
					if outstanding == 0 && doneInjecting() {
						c.Eng.Stop()
					}
				}
				outstanding++
			} else if doneInjecting() && outstanding == 0 {
				// The window may have drained before doneInjecting turned
				// true; re-check here so the run always terminates.
				c.Eng.Stop()
			}
		}
	})
	c.Eng.Run(engine.Time(spec.MaxVirtualSeconds * cyclesPerSec))
	c.Eng.Shutdown()

	// Aggregate.
	agg := &Results{PerFunc: map[FuncID]*FuncStats{}}
	for _, s := range c.Servers {
		agg.Latency.Merge(&s.Res.Latency)
		agg.ServiceTime.Merge(&s.Res.ServiceTime)
		agg.DispatchNS.Merge(&s.Res.DispatchNS)
		agg.Completed += s.Res.Completed
		agg.Failed += s.Res.Failed
		agg.AllInvocations += s.Res.AllInvocations
		if agg.FirstArrival == 0 || (s.Res.FirstArrival != 0 && s.Res.FirstArrival < agg.FirstArrival) {
			agg.FirstArrival = s.Res.FirstArrival
		}
		if s.Res.LastComplete > agg.LastComplete {
			agg.LastComplete = s.Res.LastComplete
		}
		for fn, fs := range s.Res.PerFunc {
			dst := agg.PerFunc[fn]
			if dst == nil {
				dst = &FuncStats{Name: fs.Name}
				agg.PerFunc[fn] = dst
			}
			dst.Count += fs.Count
			dst.Service += fs.Service
			dst.Dispatch += fs.Dispatch
			dst.Isolation += fs.Isolation
			dst.Alloc += fs.Alloc
			dst.Comm += fs.Comm
			dst.Exec += fs.Exec
			dst.Queue += fs.Queue
		}
	}
	return agg
}

// Close shuts down the shared engine.
func (c *Cluster) Close() { c.Eng.Shutdown() }
