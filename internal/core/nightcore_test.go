package core

import (
	"testing"
)

func newNC(t *testing.T) *System {
	t.Helper()
	return newSys(t, func(c *Config) { c.NightCore = true })
}

func TestNightCoreRuns(t *testing.T) {
	s := newNC(t)
	child := s.MustRegister("child", func(c *Ctx) error { c.ExecNS(500); return nil })
	fn := s.MustRegister("root", func(c *Ctx) error {
		c.ExecNS(1000)
		return c.Call(child, 4)
	})
	r := s.RunOnce(fn, 15)
	if !r.done || r.status != nil {
		t.Fatalf("NightCore run failed: %v", r.status)
	}
	if r.Trace.Isolation != 0 {
		t.Fatalf("NightCore charged isolation: %d", r.Trace.Isolation)
	}
	if r.Trace.Comm <= 0 {
		t.Fatal("NightCore charged no pipe cost")
	}
}

func TestNightCorePipeOverheadDwarfsJord(t *testing.T) {
	// §6.1/§6.2: NightCore's per-invocation pipe+copy overhead is
	// microseconds; Jord's isolation overhead is nanoseconds.
	build := func(nc bool) (pipeOrIsolNS, latencyNS float64) {
		s := newSys(t, func(c *Config) { c.NightCore = nc; c.Seed = 3 })
		child := s.MustRegister("child", func(c *Ctx) error { c.ExecNS(500); return nil })
		fn := s.MustRegister("root", func(c *Ctx) error {
			c.ExecNS(1000)
			return c.Call(child, 4)
		})
		res := s.RunLoad(LoadSpec{
			RPS: 200_000, Warmup: 100, Measure: 500,
			Root: func() (FuncID, int) { return fn, 15 },
		})
		bd := res.MeanBreakdown(fn, s.M.Cfg.FreqGHz)
		if nc {
			return bd.Comm, res.P99LatencyNS()
		}
		return bd.Isolation, res.P99LatencyNS()
	}
	jordIsol, jordP99 := build(false)
	ncPipe, ncP99 := build(true)
	if ncPipe < 10*jordIsol {
		t.Fatalf("NightCore pipe overhead %.0f ns should dwarf Jord isolation %.0f ns",
			ncPipe, jordIsol)
	}
	if ncPipe < 3000 {
		t.Fatalf("NightCore per-invocation overhead %.0f ns, want microseconds", ncPipe)
	}
	if ncP99 <= jordP99 {
		t.Fatalf("NightCore p99 %.0f ns should exceed Jord %.0f ns", ncP99, jordP99)
	}
}

func TestNightCoreInsecureByDesign(t *testing.T) {
	// The enhanced baseline trades isolation for speed (the paper's point):
	// forged loads do not fault.
	s := newNC(t)
	fn := s.MustRegister("forger", func(c *Ctx) error {
		return c.Load(0xdeadbeef)
	})
	r := s.RunOnce(fn, 1)
	if r.status != nil {
		t.Fatalf("NightCore faulted on a forged address: %v", r.status)
	}
}
