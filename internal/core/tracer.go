package core

import (
	"fmt"
	"strings"

	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// EventKind classifies runtime trace events along the Figure 4 flow.
type EventKind int

const (
	EvArrive EventKind = iota
	EvStage            // orchestrator stages the ArgBuf
	EvDispatch
	EvDequeue
	EvPDInit  // cget + stack/heap + code/ArgBuf permissions
	EvEnter   // ccall
	EvExecute // a compute segment ran
	EvSubmit  // nested request submitted
	EvSuspend // cexit
	EvResume  // center
	EvTeardown
	EvComplete
)

func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvStage:
		return "stage-argbuf"
	case EvDispatch:
		return "dispatch"
	case EvDequeue:
		return "dequeue"
	case EvPDInit:
		return "pd-init"
	case EvEnter:
		return "ccall"
	case EvExecute:
		return "execute"
	case EvSubmit:
		return "submit-nested"
	case EvSuspend:
		return "cexit"
	case EvResume:
		return "center"
	case EvTeardown:
		return "teardown"
	case EvComplete:
		return "complete"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// TraceEvent is one timestamped runtime event.
type TraceEvent struct {
	At   engine.Time
	Kind EventKind
	Req  uint64 // request ID
	Fn   string
	Core topo.CoreID
	Note string
}

// Tracer collects a timeline of runtime events. Attach one with
// System.SetTracer; tracing is off (nil) by default and costs nothing.
type Tracer struct {
	Events []TraceEvent
	// Limit caps the number of recorded events (0 = unlimited).
	Limit int
}

// SetTracer installs tr (nil disables tracing).
func (s *System) SetTracer(tr *Tracer) { s.tracer = tr }

// trace records an event if tracing is enabled.
func (s *System) trace(kind EventKind, r *Request, core topo.CoreID, note string) {
	tr := s.tracer
	if tr == nil {
		return
	}
	if tr.Limit > 0 && len(tr.Events) >= tr.Limit {
		return
	}
	name := ""
	if r != nil {
		name = s.funcDef(r.Fn).Name
	}
	var id uint64
	if r != nil {
		id = r.ID
	}
	tr.Events = append(tr.Events, TraceEvent{
		At: s.Eng.Now(), Kind: kind, Req: id, Fn: name, Core: core, Note: note,
	})
}

// Render formats the timeline, with time in ns relative to the first
// event.
func (tr *Tracer) Render(freqGHz float64) string {
	if len(tr.Events) == 0 {
		return "(no events)\n"
	}
	var b strings.Builder
	t0 := tr.Events[0].At
	fmt.Fprintf(&b, "%10s  %-14s %6s %6s  %-24s %s\n",
		"t (ns)", "event", "req", "core", "function", "")
	for _, ev := range tr.Events {
		fmt.Fprintf(&b, "%10.1f  %-14s %6d %6d  %-24s %s\n",
			float64(ev.At-t0)/freqGHz, ev.Kind, ev.Req, ev.Core, ev.Fn, ev.Note)
	}
	return b.String()
}
