package core

import (
	"fmt"
	"math/rand/v2"

	"jord/internal/ipc"
	"jord/internal/mem/vmatable"
	"jord/internal/metrics"
	"jord/internal/privlib"
	"jord/internal/sim/engine"
	"jord/internal/sim/memmodel"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Config assembles one Jord worker server.
type Config struct {
	Machine topo.Config
	VLB     vlb.Config
	Variant privlib.Variant

	// NumOrchestrators is how many cores run orchestrators; the remaining
	// cores run executors. 0 picks one orchestrator per 8 cores
	// (minimum 1). Orchestrators and executors are pinned (§3.3/§3.4).
	NumOrchestrators int

	// PerSocketOrchestrators confines each orchestrator's executor group
	// to its own socket (the §6.3 mitigation). When false, executors are
	// split among orchestrators round-robin across the whole machine.
	PerSocketOrchestrators bool

	// JBSQBound is the queue-depth bound k of JBSQ(k).
	JBSQBound int

	// Dispatch selects the orchestrator's load-balancing policy. The
	// paper uses JBSQ (§3.3) and defers a policy comparison; the
	// alternatives here exist for that ablation.
	Dispatch DispatchPolicy

	// UnsafeNoInternalPriority disables both §3.3 deadlock-avoidance
	// mechanisms: internal (nested) requests no longer preempt external
	// ones and must respect the JBSQ bound like everyone else. Under
	// sustained external load the system livelocks — executors fill with
	// parents waiting for children that never dispatch. Exists only for
	// the ablation experiment.
	UnsafeNoInternalPriority bool

	// NightCore switches the runtime to the enhanced-NightCore baseline
	// (§5): same single address space, thread pinning, and JBSQ dispatch,
	// but every cross-function hop goes through OS pipes and SysV
	// shared-memory copies instead of PrivLib permission transfers, and
	// there is no in-process isolation.
	NightCore bool

	// StackBytes/HeapBytes size each invocation's private stack and heap.
	StackBytes, HeapBytes uint64

	// TimeSliceNS co-locates other tenants with Jord: once per slice the
	// OS context-switches each executor core, which saves/restores the
	// uatp/uatc/ucid CSRs (§4.4) and invalidates the core's VLBs —
	// cached user translations cannot outlive the address-space switch.
	// The disturbance Jord-specific code sees is the post-switch VLB
	// refill (cold walks). 0 disables interference — the paper's
	// dedicated-server methodology.
	TimeSliceNS float64

	Seed uint64
}

// DefaultConfig is the paper's 32-core evaluation setup.
func DefaultConfig() Config {
	return Config{
		Machine:                topo.QFlex32(),
		VLB:                    vlb.DefaultConfig(),
		Variant:                privlib.PlainList,
		NumOrchestrators:       0,
		PerSocketOrchestrators: true,
		JBSQBound:              4,
		StackBytes:             4096,
		HeapBytes:              1024,
		Seed:                   1,
	}
}

func (c *Config) normalize() {
	if c.NumOrchestrators <= 0 {
		// One orchestrator per 8 cores keeps dispatch off the critical
		// path at every workload's saturation point (the paper sizes
		// orchestrator groups "in proximity" without fixing a count).
		c.NumOrchestrators = c.Machine.TotalCores() / 8
		if c.NumOrchestrators < 1 {
			c.NumOrchestrators = 1
		}
	}
	if c.NumOrchestrators >= c.Machine.TotalCores() {
		c.NumOrchestrators = 1
	}
	if c.JBSQBound < 1 {
		c.JBSQBound = 1
	}
	if c.StackBytes == 0 {
		c.StackBytes = 4096
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 1024
	}
}

// System is one worker server: machine, PrivLib, orchestrators, executors,
// registry, and measurement state.
type System struct {
	Cfg Config
	Eng *engine.Engine
	M   *topo.Machine
	MM  *memmodel.Model
	Lib *privlib.Lib
	IPC ipc.Costs

	Orchs []*Orchestrator
	Execs []*Executor

	funcs []*FuncDef

	rng    *rand.Rand
	nextID uint64

	// Measurement window state (driven by the load generator).
	Res          Results
	extCount     uint64 // external requests injected so far
	warmup       uint64 // skip this many external requests
	measureN     uint64 // then measure this many
	outstanding  int    // measured external requests still in flight
	stopWhenDone bool

	tracer *Tracer

	// Cluster linkage (nil/0 for a standalone server).
	ServerID int
	cluster  *Cluster
}

// Results aggregates one run's measurements.
type Results struct {
	Latency     metrics.Histogram // external request latency (ns)
	ServiceTime metrics.Histogram // per-invocation service time (ns), all invocations
	DispatchNS  metrics.Histogram // per-dispatch orchestrator overhead (ns)

	Completed      uint64 // recorded external completions
	Failed         uint64 // completions whose root function returned an error
	AllInvocations uint64
	FirstArrival   engine.Time
	LastComplete   engine.Time

	PerFunc map[FuncID]*FuncStats
}

// FuncStats is the per-function breakdown accumulator (Figure 11).
type FuncStats struct {
	Name    string
	Count   uint64
	Service engine.Time
	Trace
}

// NewSystem builds and boots a worker server with its own engine.
func NewSystem(cfg Config) (*System, error) {
	return newSystemOn(engine.New(), cfg, 0)
}

// newSystemOn boots a worker server onto an existing engine (cluster use:
// all servers share one virtual timeline).
func newSystemOn(eng *engine.Engine, cfg Config, serverID int) (*System, error) {
	cfg.normalize()
	m, err := topo.NewMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	lib, err := privlib.Boot(m, cfg.VLB, cfg.Variant)
	if err != nil {
		return nil, err
	}
	s := &System{
		Cfg:      cfg,
		Eng:      eng,
		M:        m,
		MM:       memmodel.New(m),
		Lib:      lib,
		IPC:      ipc.Costs{Cfg: cfg.Machine},
		ServerID: serverID,
		rng:      rand.New(rand.NewPCG(cfg.Seed+uint64(serverID)*0x51ab, 0x9e3779b97f4a7c15)),
	}
	s.Res.PerFunc = make(map[FuncID]*FuncStats)
	s.buildTopology()
	return s, nil
}

// buildTopology pins orchestrators and executors to cores and forms
// proximity groups.
func (s *System) buildTopology() {
	total := s.M.Cfg.TotalCores()
	nOrch := s.Cfg.NumOrchestrators

	// Spread orchestrator cores evenly; core IDs are row-major per socket,
	// so an even stride keeps them spatially spread.
	orchCores := make(map[topo.CoreID]bool, nOrch)
	stride := total / nOrch
	for i := 0; i < nOrch; i++ {
		orchCores[topo.CoreID(i*stride)] = true
	}

	for c := 0; c < total; c++ {
		id := topo.CoreID(c)
		if orchCores[id] {
			o := newOrchestrator(s, id)
			s.Orchs = append(s.Orchs, o)
		}
	}
	for c := 0; c < total; c++ {
		id := topo.CoreID(c)
		if orchCores[id] {
			continue
		}
		e := newExecutor(s, id)
		s.Execs = append(s.Execs, e)
		s.assignExecutor(e)
	}
}

// assignExecutor places an executor into the nearest eligible
// orchestrator's group.
func (s *System) assignExecutor(e *Executor) {
	var best *Orchestrator
	bestScore := 1 << 30
	for _, o := range s.Orchs {
		if s.Cfg.PerSocketOrchestrators && s.M.Socket(o.Core) != s.M.Socket(e.Core) {
			continue
		}
		// Balance group sizes first; break ties by mesh proximity so each
		// orchestrator ends up managing the executors nearest to it.
		score := len(o.group)*1000 + s.M.HopDist(o.Core, e.Core)
		if score < bestScore {
			bestScore = score
			best = o
		}
	}
	if best == nil {
		best = s.Orchs[0]
	}
	best.group = append(best.group, e)
	e.orch = best
}

// Register deploys a function: the runtime loads its code into an
// executable VMA owned by the executor domain, from which per-invocation
// PDs receive execute permission via pcopy.
func (s *System) Register(name string, body func(*Ctx) error) (FuncID, error) {
	codeVA, _, err := s.Lib.Mmap(0, privlib.ExecutorPD, 4096, vmatable.PermRX)
	if err != nil {
		return 0, fmt.Errorf("core: registering %s: %w", name, err)
	}
	id := FuncID(len(s.funcs))
	s.funcs = append(s.funcs, &FuncDef{ID: id, Name: name, Body: body, codeVA: codeVA})
	s.Res.PerFunc[id] = &FuncStats{Name: name}
	return id, nil
}

// MustRegister is Register for static workload setup.
func (s *System) MustRegister(name string, body func(*Ctx) error) FuncID {
	id, err := s.Register(name, body)
	if err != nil {
		panic(err)
	}
	return id
}

// funcDef returns the definition for id.
func (s *System) funcDef(id FuncID) *FuncDef { return s.funcs[int(id)] }

// nsToCycles and cyclesToNS convert against the machine clock.
func (s *System) nsToCycles(ns float64) engine.Time { return s.M.Cfg.NSToCycles(ns) }
func (s *System) cyclesToNS(t engine.Time) float64  { return s.M.Cfg.CyclesToNS(t) }

// newRequest mints a request.
func (s *System) newRequest(fn FuncID, blocks int, external bool, parent *Continuation) *Request {
	s.nextID++
	return &Request{
		ID:       s.nextID,
		Fn:       fn,
		Blocks:   blocks,
		External: external,
		parent:   parent,
	}
}

// Inject delivers an external request to an orchestrator (round-robin by
// request ID), stamping its arrival. It is called from load-generator
// procs. Requests within the configured measurement window are marked
// measured; requests injected before (warmup) and after (pressure tail)
// are not.
func (s *System) Inject(fn FuncID, blocks int) *Request {
	r := s.newRequest(fn, blocks, true, nil)
	r.Arrival = s.Eng.Now()
	s.extCount++
	if s.cluster == nil &&
		s.extCount > s.warmup && (s.measureN == 0 || s.extCount <= s.warmup+s.measureN) {
		// Standalone window marking; a cluster marks requests itself.
		r.measured = true
		s.outstanding++
		if s.Res.FirstArrival == 0 {
			// The measured-rate window starts at the first measured
			// arrival, not at warmup.
			s.Res.FirstArrival = r.Arrival
		}
	}
	s.trace(EvArrive, r, 0, "")
	o := s.Orchs[int(r.ID)%len(s.Orchs)]
	o.submitExternal(r)
	return r
}

// completeExternal records one finished external request.
func (s *System) completeExternal(r *Request) {
	if !r.measured {
		return
	}
	lat := s.Eng.Now() - r.Arrival
	s.Res.Latency.Record(int64(s.cyclesToNS(lat)))
	s.Res.Completed++
	if s.Res.FirstArrival == 0 || r.Arrival < s.Res.FirstArrival {
		s.Res.FirstArrival = r.Arrival
	}
	if r.status != nil {
		s.Res.Failed++
	}
	if r.onComplete != nil {
		r.onComplete()
	}
	s.Res.LastComplete = s.Eng.Now()
	if s.cluster == nil {
		s.outstanding--
		if s.outstanding == 0 && s.stopWhenDone &&
			s.measureN > 0 && s.extCount >= s.warmup+s.measureN {
			s.Eng.Stop()
		}
	}
}

// recordInvocation folds one finished invocation (external or nested) into
// the service-time stats. Service time is the invocation's *busy* time —
// execution, isolation, communication, and dispatch — matching the paper's
// Figure 11, whose breakdown bars stack exactly to the service time;
// suspension and queueing delays appear in request latency (Figure 9) but
// not here.
func (s *System) recordInvocation(r *Request, wall engine.Time) {
	if !r.measured {
		return
	}
	_ = wall // wall time (incl. suspension) feeds latency, not service
	// Dispatch happens on the orchestrator before the invocation starts;
	// Figure 14 tracks it as its own series, so it stays out of service.
	service := r.Trace.Exec + r.Trace.Isolation + r.Trace.Alloc + r.Trace.Comm
	s.Res.AllInvocations++
	s.Res.ServiceTime.Record(int64(s.cyclesToNS(service)))
	fs := s.Res.PerFunc[r.Fn]
	fs.Count++
	fs.Service += service
	fs.Dispatch += r.Trace.Dispatch
	fs.Isolation += r.Trace.Isolation
	fs.Alloc += r.Trace.Alloc
	fs.Comm += r.Trace.Comm
	fs.Exec += r.Trace.Exec
	fs.Queue += r.Trace.Queue
}
