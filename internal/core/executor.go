package core

import (
	"fmt"

	"jord/internal/mem/vmatable"
	"jord/internal/privlib"
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// Executor runs function invocations on one pinned core (§3.4). It holds a
// bounded queue of dispatched-but-unstarted requests and an unbounded list
// of suspended continuations ready to resume; resumptions have priority so
// in-flight work drains before new work starts.
type Executor struct {
	sys  *System
	Core topo.CoreID
	proc *engine.Proc
	orch *Orchestrator

	queue  []*Request
	resume []*Continuation

	// current is the continuation the executor has handed the core to;
	// contYielded flags that it gave the core back (finished or cexit).
	// The explicit flag distinguishes the continuation handshake from
	// unrelated Unparks (e.g. a remote executor queueing a resumption).
	current     *Continuation
	contYielded bool

	Started   uint64
	Completed uint64
	Suspends  uint64

	IsolationCycles engine.Time
}

func newExecutor(s *System, core topo.CoreID) *Executor {
	e := &Executor{sys: s, Core: core}
	e.proc = s.Eng.Spawn(fmt.Sprintf("exec-%d", core), e.run)
	if s.Cfg.TimeSliceNS > 0 {
		e.spawnInterference()
	}
	return e
}

// spawnInterference models a co-located tenant's OS context switches:
// once per time slice the core's VLBs are invalidated (cached user
// translations do not survive the address-space switch; the uatp/uatc/
// ucid CSRs are saved and restored by the OS, §4.4). Jord-specific code
// then pays cold VTW walks to refill — which the paper's nanosecond walk
// makes nearly free, the claim this knob lets tests verify.
func (e *Executor) spawnInterference() {
	s := e.sys
	slice := s.nsToCycles(s.Cfg.TimeSliceNS)
	s.Eng.Spawn(fmt.Sprintf("tenant-%d", e.Core), func(p *engine.Proc) {
		for {
			p.Delay(slice)
			s.Lib.Sub.FlushCore(e.Core)
		}
	})
}

// queueLen is what the orchestrator's JBSQ probe reads.
func (e *Executor) queueLen() int { return len(e.queue) }

// enqueue accepts a dispatched request.
func (e *Executor) enqueue(r *Request) {
	e.queue = append(e.queue, r)
	e.proc.Unpark()
}

// readyResume queues a suspended continuation for resumption.
func (e *Executor) readyResume(c *Continuation) {
	e.resume = append(e.resume, c)
	e.proc.Unpark()
}

// run is the executor loop: resume suspended continuations first, then
// start queued requests, else sleep.
func (e *Executor) run(p *engine.Proc) {
	for {
		switch {
		case len(e.resume) > 0:
			c := e.resume[0]
			e.resume = e.resume[1:]
			e.resumeContinuation(p, c)
		case len(e.queue) > 0:
			if !e.sys.Lib.HasFreePDs() {
				// Every PD ID is held by a suspended function; starting
				// new work would fault in cget. Stall until something
				// completes (each retry consumes one wakeup, so this
				// cannot spin).
				p.Park()
				continue
			}
			r := e.queue[0]
			e.queue = e.queue[1:]
			e.orch.proc.Unpark() // capacity freed: wake a stalled orchestrator
			e.startInvocation(p, r)
		default:
			p.Park()
		}
	}
}

// chargeIsolation delays the executor by a PrivLib op's latency plus the
// I-VLB cost of the PrivLib entry/exit, and books it to the request's
// isolation bucket.
func (e *Executor) chargeIsolation(p *engine.Proc, r *Request, lat engine.Time, err error) {
	if err != nil {
		panic(fmt.Sprintf("core: executor %d isolation op: %v", e.Core, err))
	}
	lat += e.sys.touchInstr(e.Core, privlib.ExecutorPD, e.sys.funcDef(r.Fn).codeVA)
	p.Delay(lat)
	r.Trace.Isolation += lat
	e.IsolationCycles += lat
}

// chargeAlloc is chargeIsolation for VMA (de)allocations, which land in
// the Alloc bucket: JordNI pays them too, so they are not isolation
// overhead in the paper's sense.
func (e *Executor) chargeAlloc(p *engine.Proc, r *Request, lat engine.Time, err error) {
	if err != nil {
		panic(fmt.Sprintf("core: executor %d alloc op: %v", e.Core, err))
	}
	lat += e.sys.touchInstr(e.Core, privlib.ExecutorPD, e.sys.funcDef(r.Fn).codeVA)
	p.Delay(lat)
	r.Trace.Alloc += lat
}

// startInvocation implements the Figure 4 flow: initialize the PD (private
// stack and heap, code permission, ArgBuf permission), ccall into the
// function, and — when the function finally finishes — tear everything
// down and report completion.
func (e *Executor) startInvocation(p *engine.Proc, r *Request) {
	lib := e.sys.Lib
	def := e.sys.funcDef(r.Fn)
	r.ServiceStart = p.Now()
	e.Started++
	e.sys.trace(EvDequeue, r, e.Core, "")

	// Dequeue: the request line (written by the orchestrator) migrates to
	// this core.
	p.Delay(e.sys.MM.LinePing(e.Core, e.orch.Core, qAddr(e)))

	var c *Continuation
	if e.sys.Cfg.NightCore {
		// NightCore worker: read the dispatch pipe (the blocked thread
		// pays a scheduler wakeup first), copy the arguments out of shm,
		// deserialize. No protection domains.
		c = &Continuation{req: r, exec: e, pd: privlib.ExecutorPD}
		bytes := r.Blocks * 64
		cost := e.sys.IPC.WakeupLatency() + e.sys.IPC.MessageRecvCPU(bytes)
		p.Delay(cost)
		r.Trace.Comm += cost
	} else {
		// --- Initialize PD (Figure 4) ---
		pd, lat, err := lib.Cget(e.Core)
		if err != nil {
			// PD space was exhausted between the loop's capacity check
			// and now (virtual time passed during the dequeue). Requeue
			// at the front; the loop will stall until capacity returns.
			e.queue = append([]*Request{r}, e.queue...)
			return
		}
		e.chargeIsolation(p, r, lat, nil)
		c = &Continuation{req: r, exec: e, pd: pd}

		stackVA, lat, err := lib.Mmap(e.Core, pd, e.sys.Cfg.StackBytes, vmatable.PermRW)
		e.chargeAlloc(p, r, lat, err)
		c.stackVA = stackVA
		heapVA, lat, err := lib.Mmap(e.Core, pd, e.sys.Cfg.HeapBytes, vmatable.PermRW)
		e.chargeAlloc(p, r, lat, err)
		c.heapVA = heapVA

		// Copy code permission into the PD (the executor domain retains it).
		lat, err = lib.Pcopy(e.Core, privlib.ExecutorPD, def.codeVA, pd, vmatable.PermRX)
		e.chargeIsolation(p, r, lat, err)
		// Transfer the ArgBuf permission to the PD.
		lat, err = lib.Pmove(e.Core, privlib.ExecutorPD, r.ArgBufVA, pd, vmatable.PermRW)
		e.chargeIsolation(p, r, lat, err)

		// The function's first touch of the ArgBuf pulls its blocks from
		// the producer core (zero-copy: only coherence traffic, no copies).
		if r.Producer != e.Core && r.Blocks > 0 {
			xfer := e.sys.MM.BlockStreamTransfer(r.Producer, e.Core, r.Blocks, r.ArgBufVA/64)
			p.Delay(xfer)
			r.Trace.Comm += xfer
		}

		e.sys.trace(EvPDInit, r, e.Core, fmt.Sprintf("pd=%d", c.pd))

		// --- Enter the PD ---
		lat, err = lib.Ccall(e.Core, c.pd)
		e.chargeIsolation(p, r, lat, err)
		e.sys.trace(EvEnter, r, e.Core, "")
	}

	// Launch the continuation and lend it the core.
	e.current = c
	c.proc = e.sys.Eng.Spawn(fmt.Sprintf("fn-%s-%d", def.Name, r.ID), func(fp *engine.Proc) {
		ctx := &Ctx{sys: e.sys, cont: c, proc: fp}
		c.err = def.Body(ctx)
		c.finished = true
		e.yieldFromContinuation()
	})
	e.waitForYield(p)

	if c.finished {
		e.finishInvocation(p, c)
	}
	// Otherwise the continuation suspended; it will come back through the
	// resume list when its child completes.
}

// resumeContinuation re-enters a suspended continuation (center) after its
// awaited child completed, first handing the child's result ArgBuf back to
// the parent's PD.
func (e *Executor) resumeContinuation(p *engine.Proc, c *Continuation) {
	lib := e.sys.Lib
	r := c.req

	if e.sys.Cfg.NightCore {
		// Switch the blocked worker thread back in.
		cost := e.sys.IPC.ThreadSwitch()
		p.Delay(cost)
		r.Trace.Comm += cost
	} else {
		lat, err := lib.Center(e.Core, c.pd)
		e.chargeIsolation(p, r, lat, err)
	}

	e.sys.trace(EvResume, r, e.Core, "")
	e.current = c
	c.proc.Unpark()
	e.waitForYield(p)

	if c.finished {
		e.finishInvocation(p, c)
	}
}

// waitForYield blocks the executor until its current continuation hands
// the core back, ignoring unrelated wakeups (those re-check the flag and
// park again; their work sits in the queue/resume lists for the main
// loop).
func (e *Executor) waitForYield(p *engine.Proc) {
	for !e.contYielded {
		p.Park()
	}
	e.contYielded = false
	e.current = nil
}

// yieldFromContinuation is called from the continuation proc when it
// finishes or suspends: it returns the core to the executor.
func (e *Executor) yieldFromContinuation() {
	e.contYielded = true
	e.proc.Unpark()
}

// finishInvocation is the right half of Figure 4: transfer the ArgBuf
// back, revoke code permission, destroy stack/heap and the PD, then notify
// the orchestrator (external) or resume the parent (nested).
func (e *Executor) finishInvocation(p *engine.Proc, c *Continuation) {
	lib := e.sys.Lib
	r := c.req

	if e.sys.Cfg.NightCore {
		// Serialize the result and send the completion pipe message.
		cost := e.sys.IPC.MessageSendCPU(r.Blocks * 64)
		p.Delay(cost)
		r.Trace.Comm += cost
	} else {
		// Transfer the ArgBuf (now holding outputs) back to the executor
		// domain.
		lat, err := lib.Pmove(e.Core, c.pd, r.ArgBufVA, privlib.ExecutorPD, vmatable.PermRW)
		e.chargeIsolation(p, r, lat, err)
		// Revoke code access: move the PD's copy back onto the executor
		// domain's existing grant.
		lat, err = lib.Pmove(e.Core, c.pd, e.sys.funcDef(r.Fn).codeVA, privlib.ExecutorPD, vmatable.PermRX)
		e.chargeIsolation(p, r, lat, err)

		// Any ArgBufs the function created for nested calls die with it.
		for _, va := range c.ownedBufs {
			lat, err = lib.Munmap(e.Core, privlib.ExecutorPD, va)
			e.chargeAlloc(p, r, lat, err)
		}

		// Destroy the private stack and heap, then the PD.
		lat, err = lib.Munmap(e.Core, c.pd, c.stackVA)
		e.chargeAlloc(p, r, lat, err)
		lat, err = lib.Munmap(e.Core, c.pd, c.heapVA)
		e.chargeAlloc(p, r, lat, err)
		lat, err = lib.Cput(e.Core, c.pd)
		e.chargeIsolation(p, r, lat, err)
	}

	e.sys.trace(EvTeardown, r, e.Core, "")
	r.status = c.err
	e.Completed++

	// A nested request forwarded from another server completes back over
	// the network: its results must cross the wire before the parent can
	// observe them, so done is set by the cluster callback.
	if !r.External && r.remoteHop && e.sys.cluster != nil && r.parent.exec.sys != e.sys {
		if r.ArgBufVA != 0 {
			// The remote-side staging ArgBuf dies once the results ship.
			lat, err := lib.Munmap(e.Core, privlib.ExecutorPD, r.ArgBufVA)
			e.chargeAlloc(p, r, lat, err)
			r.ArgBufVA = 0
		}
		e.sys.cluster.completeRemote(e, r, p)
		e.sys.recordInvocation(r, p.Now()-r.ServiceStart)
		return
	}
	r.done = true

	if r.External {
		// Notify the orchestrator; latency measurement ends when it is
		// informed (§5).
		note := e.sys.M.NetLatency(e.Core, e.orch.Core, ctrlMsgBytes)
		p.Delay(note)
		r.Trace.Comm += note
		e.sys.recordInvocation(r, p.Now()-r.ServiceStart)
		e.sys.completeExternal(r)
		e.sys.trace(EvComplete, r, e.Core, "")
		if !e.sys.Cfg.NightCore {
			// The root ArgBuf is dead once the response is sent.
			lat, err := lib.Munmap(e.Core, privlib.ExecutorPD, r.ArgBufVA)
			e.chargeAlloc(p, r, lat, err)
		}
		return
	}

	// Nested request: hand the result to the parent continuation's
	// executor and make the parent runnable if it is waiting on us.
	parent := r.parent
	note := e.sys.M.NetLatency(e.Core, parent.exec.Core, ctrlMsgBytes)
	p.Delay(note)
	r.Trace.Comm += note
	e.sys.recordInvocation(r, p.Now()-r.ServiceStart)
	if parent.waiting == r {
		parent.waiting = nil
		parent.exec.readyResume(parent)
	}
}
