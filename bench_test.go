// Benchmarks regenerating each table/figure of the paper plus
// microbenchmarks of the core substrates. The experiment benches report
// headline reproduction metrics (throughput under SLO, latencies) via
// b.ReportMetric; run them with:
//
//	go test -bench=. -benchmem
//
// For paper-grade sweeps use cmd/jordsim with -scale full instead; the
// benches here run at reduced scale so the whole suite stays in minutes.
package jord_test

import (
	"testing"

	"jord"
	"jord/internal/experiments"
	"jord/internal/mem/btree"
	"jord/internal/mem/va"
	"jord/internal/mem/vmatable"
	"jord/internal/metrics"
	"jord/internal/privlib"
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// benchScale keeps experiment benches short; one iteration is one full
// (reduced) experiment.
var benchScale = experiments.Scale{Name: "bench", Warmup: 150, Measure: 1200, MaxPoints: 4}

// BenchmarkTable4 regenerates Table 4 (VMA/PD operation latencies) and
// reports the simulator-side numbers.
func BenchmarkTable4(b *testing.B) {
	var last *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.SimNS, metricName(row.Operation)+"_sim_ns")
	}
}

// metricName makes a string safe for b.ReportMetric units (no spaces).
func metricName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			out = append(out, '_')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// fig9Bench sweeps one workload's Figure 9 panel and reports
// throughput-under-SLO per system.
func fig9Bench(b *testing.B, workload string) {
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig9(benchScale, workload, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, s := range last.Panels[0].Series {
		b.ReportMetric(s.TputUnderSLO/1e6, s.System.String()+"_MRPS_under_SLO")
	}
	b.ReportMetric(last.Panels[0].SLONS/1000, "SLO_us")
}

func BenchmarkFig9Hipster(b *testing.B) { fig9Bench(b, "hipster") }
func BenchmarkFig9Hotel(b *testing.B)   { fig9Bench(b, "hotel") }
func BenchmarkFig9Media(b *testing.B)   { fig9Bench(b, "media") }
func BenchmarkFig9Social(b *testing.B)  { fig9Bench(b, "social") }

// BenchmarkFig10 regenerates the service-time CDF and reports each
// workload's p75 (the paper's "75% below ~5 us" marker).
func BenchmarkFig10(b *testing.B) {
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, wl := range last.Workloads {
		b.ReportMetric(float64(wl.P75NS)/1000, wl.Workload+"_p75_us")
		b.ReportMetric(float64(wl.MaxNS)/1000, wl.Workload+"_max_us")
	}
}

// BenchmarkFig11 regenerates the selected-function breakdown and reports
// the Jord-vs-NightCore service ratio averaged over the eight functions.
func BenchmarkFig11(b *testing.B) {
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var jordSum, ncSum float64
	for _, bar := range last.Bars {
		if bar.System == experiments.Jord {
			jordSum += bar.ServiceNS
		} else {
			ncSum += bar.ServiceNS
		}
	}
	if ncSum > 0 {
		// Paper §6.1: Jord achieves ~48% less service time than NightCore.
		b.ReportMetric(100*(1-jordSum/ncSum), "service_reduction_pct")
	}
}

// BenchmarkFig12 regenerates the VLB sizing study and reports the
// throughput ratio of small-to-large VLBs.
func BenchmarkFig12(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig12(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, panel := range last.Panels {
		base := panel.Series[len(panel.Series)-1].TputUnderSLO
		if base <= 0 {
			continue
		}
		for _, s := range panel.Series {
			b.ReportMetric(s.TputUnderSLO/base, panel.VLBKind+"_"+itoa(s.Entries)+"entry_rel")
		}
	}
}

// BenchmarkFig13 regenerates the plain-list-vs-B-tree comparison.
func BenchmarkFig13(b *testing.B) {
	var last *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig13(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, panel := range last.Panels {
		if panel.Series[0].TputUnderSLO > 0 {
			b.ReportMetric(panel.Series[1].TputUnderSLO/panel.Series[0].TputUnderSLO,
				panel.Workload+"_bt_over_jord")
		}
	}
}

// BenchmarkFig14 regenerates the scalability study and reports the
// dual-socket dispatch latency.
func BenchmarkFig14(b *testing.B) {
	var last *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig14(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.DispatchNS/1000, metricName(row.Scale)+"_dispatch_us")
	}
}

// BenchmarkOverheads regenerates the §6.2 overhead accounting.
func BenchmarkOverheads(b *testing.B) {
	var last *experiments.OverheadsResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunOverheads(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.OverheadFraction*100, row.Workload+"_overhead_pct")
	}
}

// BenchmarkMotivation regenerates the §2.2 OS-vs-Jord comparison.
func BenchmarkMotivation(b *testing.B) {
	var last *experiments.MotivationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMotivation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Ratio, metricName(row.Operation)+"_os_over_jord")
	}
}

// BenchmarkDispatchPolicies regenerates the dispatch-policy ablation.
func BenchmarkDispatchPolicies(b *testing.B) {
	var last *experiments.DispatchAblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunDispatchAblation(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.TputUnderSLO/1e6, metricName(row.Policy.String())+"_MRPS")
	}
}

// BenchmarkMPK regenerates the §2.2 MPK comparison.
func BenchmarkMPK(b *testing.B) {
	var last *experiments.MPKComparisonResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMPKComparison(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.TputUnderSLO/1e6, metricName(row.System)+"_MRPS")
	}
}

// BenchmarkCluster regenerates the multi-server scaling study.
func BenchmarkCluster(b *testing.B) {
	var last *experiments.ClusterResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCluster(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.MeasuredMRPS, metricName(row.Label)+"servers_MRPS")
	}
}

// --- Substrate microbenchmarks (host performance of the library itself) ---

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := engine.New()
	for i := 0; i < b.N; i++ {
		e.Schedule(engine.Time(i%64), func() {})
	}
	b.ResetTimer()
	e.Run(engine.MaxTime)
}

func BenchmarkEngineProcSwitch(b *testing.B) {
	e := engine.New()
	e.Spawn("p", func(p *engine.Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	e.Run(engine.MaxTime)
	e.Shutdown()
}

func BenchmarkVAEncodeDecode(b *testing.B) {
	enc := va.Default()
	for i := 0; i < b.N; i++ {
		c := i % 26
		addr := enc.Encode(c, uint64(i)%enc.MaxIndex(c))
		if _, ok := enc.Decode(addr); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkVMATableLookup(b *testing.B) {
	tbl, err := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	if err != nil {
		b.Fatal(err)
	}
	vte := &vmatable.VTE{Bound: 4096, Offs: 0x1000}
	vte.SetPerm(1, vmatable.PermRW)
	if err := tbl.Insert(5, 3, vte); err != nil {
		b.Fatal(err)
	}
	addr := tbl.Enc.Encode(5, 3) + 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fault := tbl.Translate(addr, 1, vmatable.PermR); fault != vmatable.FaultNone {
			b.Fatal(fault)
		}
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	tr := btree.New()
	for i := 0; i < 10000; i++ {
		if _, err := tr.Insert(btree.Entry{Base: uint64(i) * 128, Bound: 64}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := tr.Lookup(uint64(i%10000) * 128); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPrivLibMmapMunmap(b *testing.B) {
	lib, err := privlib.Boot(topo.MustMachine(topo.QFlex32()), vlb.DefaultConfig(), privlib.PlainList)
	if err != nil {
		b.Fatal(err)
	}
	pd, _, err := lib.Cget(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, _, err := lib.Mmap(0, pd, 256, vmatable.PermRW)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lib.Munmap(0, pd, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h metrics.Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1_000_000 + 1))
	}
	if h.Count() == 0 {
		b.Fatal("no samples")
	}
}

func BenchmarkEndToEndInvocation(b *testing.B) {
	cfg := jord.DefaultConfig()
	sys, err := jord.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	fn := sys.MustRegister("bench", func(c *jord.Ctx) error {
		c.ExecNS(500)
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := sys.RunOnce(fn, 8); r == nil {
			b.Fatal("incomplete")
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
