module jord

go 1.24
