#!/usr/bin/env bash
# Overload smoke: boot a deliberately tiny jordd, offer it well past its
# capacity with jordload (retries on, exercising Retry-After backoff), and
# assert the overload-control contract from the outside:
#
#   1. the run sheds (non-zero 429/503) instead of queueing without bound,
#   2. successful requests keep a bounded p99,
#   3. some minimum goodput survives the storm,
#   4. SIGTERM drains cleanly: zero live PDs at the end, "drained" logged.
#
# Usage: scripts/overload_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18043}"
ADDR="127.0.0.1:${PORT}"
LOG="$(mktemp)"
trap 'kill "${DPID:-}" 2>/dev/null || true; rm -f "$LOG"' EXIT

go build -o /tmp/jordd-smoke ./cmd/jordd
go build -o /tmp/jordload-smoke ./cmd/jordload

# Tiny worker: 2 executors, JBSQ(1), 4-deep admission, 8-deep queue. At
# 800 rps of 5ms sleeps (~capacity 400 rps even ignoring queueing) this
# MUST shed.
/tmp/jordd-smoke -addr "$ADDR" -executors 2 -jbsq 1 -max-inflight 4 \
  -queue-cap 8 -num-pds 32 -exec-timeout 100ms >"$LOG" 2>&1 &
DPID=$!

for i in $(seq 1 50); do
  curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "FAIL: jordd never came up"; cat "$LOG"; exit 1; }
  sleep 0.1
done

# /readyz must be ready before the storm.
curl -fsS "http://${ADDR}/readyz" | grep -q '"ready": true' \
  || { echo "FAIL: /readyz not ready on a fresh daemon"; exit 1; }

# The storm: -max-p99 / -min-ok make jordload itself the assertion. The
# p99 bound is generous (retry waits honor 1s Retry-After hints) — it
# catches multi-second queue collapse, not scheduler jitter.
OUT="$(/tmp/jordload-smoke -addr "$ADDR" -fn sleep -payload 5ms -rps 800 \
  -duration 3s -retries 2 -retry-base 5ms -max-p99 4s -min-ok 50)"
echo "$OUT"

SHED="$(echo "$OUT" | awk '/^shed/ {print $2}')"
[ "${SHED:-0}" -gt 0 ] || { echo "FAIL: no sheds at 2x+ capacity"; exit 1; }

# The daemon survived: still ready, and /statsz agrees it shed. A short
# settle covers the tail of fire-and-forget teardown.
sleep 0.5
curl -fsS "http://${ADDR}/statsz" | grep -q '"rejected": [1-9]' \
  || { echo "FAIL: /statsz shows no admission rejections"; exit 1; }
curl -fsS "http://${ADDR}/varz" | grep -q '"pd_live": 0' \
  || { echo "FAIL: live PDs linger after the storm settled"; exit 1; }

# Clean drain on SIGTERM.
kill -TERM "$DPID"
for i in $(seq 1 100); do
  kill -0 "$DPID" 2>/dev/null || break
  [ "$i" = 100 ] && { echo "FAIL: jordd did not exit after SIGTERM"; cat "$LOG"; exit 1; }
  sleep 0.1
done
DPID=""
grep -q "drained" "$LOG" || { echo "FAIL: no 'drained' in jordd log"; cat "$LOG"; exit 1; }

echo "overload smoke: OK (shed=${SHED})"
